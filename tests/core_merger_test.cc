#include <gtest/gtest.h>

#include "core/merger.h"
#include "test_util.h"

namespace epl::core {
namespace {

using kinect::JointId;

SampleSummary MakeSummary(const std::vector<double>& xs,
                          Duration step = 200 * kMillisecond) {
  SampleSummary summary;
  for (size_t i = 0; i < xs.size(); ++i) {
    PoseCentroid centroid;
    centroid.sequence = static_cast<int>(i);
    centroid.joints[JointId::kRightHand] = Vec3(xs[i], 100.0, -100.0);
    centroid.time_offset = static_cast<Duration>(i) * step;
    centroid.support = 5;
    summary.centroids.push_back(centroid);
  }
  summary.frame_count = static_cast<int>(xs.size()) * 5;
  summary.duration = static_cast<Duration>(xs.size() - 1) * step;
  return summary;
}

GeneralizationConfig TightGeneralization() {
  GeneralizationConfig config;
  config.min_half_width_mm = 1.0;
  config.widen_factor = 1.0;
  config.time_slack = 1.0;
  config.time_round = 0;
  config.min_gap = 1;
  return config;
}

TEST(MergerTest, BuildWithoutSamplesFails) {
  WindowMerger merger("g", {JointId::kRightHand});
  EXPECT_FALSE(merger.Build().ok());
}

TEST(MergerTest, SingleSampleProducesDegenerateBoxes) {
  WindowMerger merger("g", {JointId::kRightHand});
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, merger.Build());
  ASSERT_EQ(def.poses.size(), 3u);
  // Default generalization enforces the paper's 50 mm minimum half width.
  const JointWindow& w0 = def.poses[0].joints.at(JointId::kRightHand);
  EXPECT_DOUBLE_EQ(w0.half_width.x, 50.0);
  EXPECT_DOUBLE_EQ(w0.center.x, 0.0);
  EXPECT_EQ(def.sample_count, 1);
}

TEST(MergerTest, MbrSpansAllSamples) {
  WindowMerger merger("g", {JointId::kRightHand});
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({20, 340, 580})));
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({-10, 320, 610})));
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def,
                           merger.Build(TightGeneralization()));
  const JointWindow& w0 = def.poses[0].joints.at(JointId::kRightHand);
  EXPECT_DOUBLE_EQ(w0.center.x, 5.0);       // (-10 + 20) / 2
  EXPECT_DOUBLE_EQ(w0.half_width.x, 15.0);  // (20 - -10) / 2
  const JointWindow& w1 = def.poses[1].joints.at(JointId::kRightHand);
  EXPECT_DOUBLE_EQ(w1.center.x, 320.0);
  EXPECT_DOUBLE_EQ(w1.half_width.x, 20.0);
}

TEST(MergerTest, CentroidsContainedInBuiltWindows) {
  // Property: every merged centroid lies inside the built windows (when a
  // small positive margin is applied).
  WindowMerger merger("g", {JointId::kRightHand});
  std::vector<SampleSummary> samples = {MakeSummary({0, 290, 615}),
                                        MakeSummary({25, 310, 600}),
                                        MakeSummary({-15, 305, 590})};
  for (const SampleSummary& sample : samples) {
    EPL_ASSERT_OK(merger.AddSample(sample));
  }
  GeneralizationConfig config = TightGeneralization();
  config.extra_margin_mm = 0.5;
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, merger.Build(config));
  for (const SampleSummary& sample : samples) {
    for (size_t i = 0; i < sample.centroids.size(); ++i) {
      EXPECT_TRUE(def.poses[i].Contains(sample.centroids[i].joints))
          << "pose " << i;
    }
  }
}

TEST(MergerTest, GapBudgetsUseSlackAndRounding) {
  WindowMerger merger("g", {JointId::kRightHand});
  // Gaps of 200 ms between poses.
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  GeneralizationConfig config;
  config.time_slack = 2.0;
  config.time_round = kSecond;
  config.min_gap = kSecond;
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, merger.Build(config));
  // 200 ms * 2.0 = 400 ms, rounded up to 1 s (paper-style whole seconds).
  EXPECT_EQ(def.poses[1].max_gap, kSecond);
  EXPECT_EQ(def.poses[0].max_gap, 0);
}

TEST(MergerTest, GapBudgetTracksSlowestSample) {
  WindowMerger merger("g", {JointId::kRightHand});
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300}, 200 * kMillisecond)));
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300}, 900 * kMillisecond)));
  GeneralizationConfig config = TightGeneralization();
  config.time_slack = 1.5;
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, merger.Build(config));
  EXPECT_EQ(def.poses[1].max_gap,
            static_cast<Duration>(900 * kMillisecond * 1.5));
}

TEST(MergerTest, ResampleAlignsDifferentPoseCounts) {
  WindowMerger merger("g", {JointId::kRightHand});
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  // Five poses over the same path: resampled onto three.
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 150, 300, 450, 600})));
  EXPECT_EQ(merger.pose_count(), 3);
  ASSERT_FALSE(merger.warnings().empty());
  EXPECT_NE(merger.warnings()[0].message.find("resampled"),
            std::string::npos);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def,
                           merger.Build(TightGeneralization()));
  // Resampled positions coincide: windows stay narrow.
  EXPECT_LT(def.poses[1].joints.at(JointId::kRightHand).half_width.x, 20.0);
}

TEST(MergerTest, StrictAlignmentRejectsMismatch) {
  MergeConfig config;
  config.alignment = MergeConfig::Alignment::kStrict;
  WindowMerger merger("g", {JointId::kRightHand}, config);
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  Status status = merger.AddSample(MakeSummary({0, 300}));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(merger.sample_count(), 1);
  EXPECT_FALSE(merger.warnings().empty());
}

TEST(MergerTest, OutlierSampleWarns) {
  WindowMerger merger("g", {JointId::kRightHand});
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({10, 310, 590})));
  // Third sample is a very different movement.
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({500, -200, 900})));
  bool deviation_warning = false;
  for (const MergeWarning& warning : merger.warnings()) {
    if (warning.message.find("deviates") != std::string::npos) {
      deviation_warning = true;
    }
  }
  EXPECT_TRUE(deviation_warning);
  EXPECT_EQ(merger.sample_count(), 3);  // still merged (warn-only default)
}

TEST(MergerTest, RejectOutliersKeepsDefinitionClean) {
  MergeConfig config;
  config.reject_outliers = true;
  WindowMerger merger("g", {JointId::kRightHand}, config);
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  Status status = merger.AddSample(MakeSummary({500, -200, 900}));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(merger.sample_count(), 1);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def,
                           merger.Build(TightGeneralization()));
  EXPECT_DOUBLE_EQ(def.poses[0].joints.at(JointId::kRightHand).center.x,
                   0.0);
}

TEST(MergerTest, SimilarSamplesProduceNoWarnings) {
  WindowMerger merger("g", {JointId::kRightHand});
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({0, 300, 600})));
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({15, 290, 610})));
  EPL_ASSERT_OK(merger.AddSample(MakeSummary({-20, 315, 595})));
  EXPECT_TRUE(merger.warnings().empty());
}

TEST(MergerTest, MissingJointRejected) {
  WindowMerger merger("g", {JointId::kRightHand, JointId::kLeftHand});
  Status status = merger.AddSample(MakeSummary({0, 300}));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace epl::core
