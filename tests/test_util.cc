#include "test_util.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>

namespace epl::testing {

std::string TestDataDir() {
  const char* dir = std::getenv("EPL_TEST_DATA_DIR");
  return dir != nullptr ? dir : "data";
}

namespace {
std::atomic<int> temp_dir_counter{0};
}  // namespace

ScopedTempDir::ScopedTempDir() {
  int id = temp_dir_counter.fetch_add(1);
  std::filesystem::path base = std::filesystem::temp_directory_path();
  path_ = (base / ("epl_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(id)))
              .string();
  std::filesystem::create_directories(path_);
}

ScopedTempDir::~ScopedTempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

}  // namespace epl::testing
