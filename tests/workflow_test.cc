#include <gtest/gtest.h>

#include "cep_workload_test_util.h"
#include "gesturedb/store.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "test_util.h"
#include "transform/transform.h"
#include "workflow/control_gestures.h"
#include "workflow/controller.h"
#include "workflow/gesture_runtime.h"
#include "workflow/motion_detector.h"
#include "workflow/recorder.h"

namespace epl::workflow {
namespace {

using kinect::GestureShape;
using kinect::GestureShapes;
using kinect::JointId;
using kinect::MotionParams;
using kinect::SkeletonFrame;
using kinect::UserProfile;

TEST(StillnessDetectorTest, StillUserDetected) {
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 1);
  StillnessDetector detector;
  bool still = false;
  for (const SkeletonFrame& frame : synth.Still(1.0)) {
    still = detector.Update(frame);
  }
  EXPECT_TRUE(still);
}

TEST(StillnessDetectorTest, MovingUserNotStill) {
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 2);
  StillnessDetector detector;
  std::vector<SkeletonFrame> frames =
      synth.PerformGesture(GestureShapes::SwipeRight());
  bool was_still_mid_gesture = false;
  // Skip the initial move-to-start ramp; check the core movement.
  for (size_t i = frames.size() / 3; i < 2 * frames.size() / 3; ++i) {
    if (detector.Update(frames[i])) {
      was_still_mid_gesture = true;
    }
  }
  EXPECT_FALSE(was_still_mid_gesture);
}

TEST(StillnessDetectorTest, NeedsFullWindow) {
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 3);
  StillnessDetector detector;
  std::vector<SkeletonFrame> frames = synth.Still(0.2);  // shorter than 0.5 s
  bool still = false;
  for (const SkeletonFrame& frame : frames) {
    still = detector.Update(frame);
  }
  EXPECT_FALSE(still);
}

TEST(StillnessDetectorTest, ResetClearsHistory) {
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 4);
  StillnessDetector detector;
  for (const SkeletonFrame& frame : synth.Still(1.0)) {
    detector.Update(frame);
  }
  EXPECT_TRUE(detector.IsStill());
  detector.Reset();
  EXPECT_FALSE(detector.IsStill());
}

std::vector<SkeletonFrame> RecordingScript(double dwell_s,
                                           uint64_t seed = 50) {
  UserProfile profile;
  kinect::SessionBuilder builder(profile, seed);
  builder.Perform(GestureShapes::SwipeRight(), dwell_s);
  return builder.TakeFrames();
}

TEST(RecorderTest, CapturesStillnessDelimitedSample) {
  SampleRecorder recorder;
  std::vector<SkeletonFrame> frames = RecordingScript(0.9);
  recorder.Start(frames.front().timestamp);
  RecorderState state = RecorderState::kIdle;
  for (const SkeletonFrame& frame : frames) {
    state = recorder.Update(frame);
    if (state == RecorderState::kComplete) {
      break;
    }
  }
  ASSERT_EQ(state, RecorderState::kComplete);
  const std::vector<SkeletonFrame>& sample = recorder.sample();
  ASSERT_GT(sample.size(), 10u);
  // The sample spans roughly the gesture duration (1 s nominal).
  Duration span = sample.back().timestamp - sample.front().timestamp;
  EXPECT_GT(span, 400 * kMillisecond);
  EXPECT_LT(span, 3 * kSecond);
  // The sampled right hand actually moved (it is the gesture, not dwell).
  double path = 0.0;
  for (size_t i = 1; i < sample.size(); ++i) {
    path += sample[i]
                .joint(JointId::kRightHand)
                .DistanceTo(sample[i - 1].joint(JointId::kRightHand));
  }
  EXPECT_GT(path, 400.0);
}

TEST(RecorderTest, FailsWhenUserNeverSettles) {
  RecorderConfig config;
  config.start_timeout = 2 * kSecond;
  SampleRecorder recorder(config);
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 51);
  std::vector<SkeletonFrame> frames = synth.Distract(4.0);
  recorder.Start(frames.front().timestamp);
  RecorderState state = RecorderState::kIdle;
  for (const SkeletonFrame& frame : frames) {
    state = recorder.Update(frame);
  }
  EXPECT_EQ(state, RecorderState::kFailed);
  EXPECT_NE(recorder.failure_reason().find("never settled"),
            std::string::npos);
}

TEST(RecorderTest, FailsWhenUserNeverMoves) {
  RecorderConfig config;
  config.start_timeout = 2 * kSecond;
  SampleRecorder recorder(config);
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 52);
  std::vector<SkeletonFrame> frames = synth.Still(4.0);
  recorder.Start(frames.front().timestamp);
  for (const SkeletonFrame& frame : frames) {
    recorder.Update(frame);
  }
  EXPECT_EQ(recorder.state(), RecorderState::kFailed);
  EXPECT_NE(recorder.failure_reason().find("never moved"),
            std::string::npos);
}

TEST(RecorderTest, IgnoresFramesWhenIdle) {
  SampleRecorder recorder;
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 53);
  for (const SkeletonFrame& frame : synth.Still(1.0)) {
    EXPECT_EQ(recorder.Update(frame), RecorderState::kIdle);
  }
}

TEST(ControlGesturesTest, DefinitionsValidate) {
  EPL_EXPECT_OK(ControlWaveDefinition().Validate());
  EPL_EXPECT_OK(ControlFinishDefinition().Validate());
}

TEST(ControlGesturesTest, WaveShapeTriggersWaveQuery) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));
  int wave_detections = 0;
  int finish_detections = 0;
  EPL_ASSERT_OK(core::DeployGesture(&engine, ControlWaveDefinition(),
                                    [&](const cep::Detection&) {
                                      ++wave_detections;
                                    })
                    .status());
  EPL_ASSERT_OK(core::DeployGesture(&engine, ControlFinishDefinition(),
                                    [&](const cep::Detection&) {
                                      ++finish_detections;
                                    })
                    .status());
  UserProfile profile;
  kinect::SessionBuilder builder(profile, 60);
  builder.Idle(0.5).Perform(GestureShapes::Wave()).Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, builder.frames()));
  EXPECT_GE(wave_detections, 1);
  EXPECT_EQ(finish_detections, 0);

  kinect::SessionBuilder finish_builder(profile, 61);
  finish_builder.Idle(0.5).Perform(GestureShapes::TwoHandSwipe()).Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, finish_builder.frames()));
  EXPECT_GE(finish_detections, 1);
}

TEST(ControlGesturesTest, OtherGesturesDoNotTriggerControls) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));
  int control_detections = 0;
  EPL_ASSERT_OK(core::DeployGesture(&engine, ControlWaveDefinition(),
                                    [&](const cep::Detection&) {
                                      ++control_detections;
                                    })
                    .status());
  EPL_ASSERT_OK(core::DeployGesture(&engine, ControlFinishDefinition(),
                                    [&](const cep::Detection&) {
                                      ++control_detections;
                                    })
                    .status());
  UserProfile profile;
  kinect::SessionBuilder builder(profile, 62);
  builder.Idle(0.4)
      .Perform(GestureShapes::SwipeRight())
      .Perform(GestureShapes::RaiseHand())
      .Perform(GestureShapes::Circle())
      .Idle(0.4);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, builder.frames()));
  EXPECT_EQ(control_detections, 0);
}

// The full paper Sec. 3.1 session: define gesture, wave to record three
// samples, two-hand swipe to finish, then verify the testing phase
// detects the freshly learned gesture.
TEST(ControllerTest, FullInteractiveLearningSession) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(gesturedb::GestureStore store,
                           gesturedb::GestureStore::Open(dir.path()));
  stream::StreamEngine engine;

  std::vector<std::string> statuses;
  std::vector<std::string> warnings;
  std::vector<std::string> deployed;
  std::vector<cep::Detection> detections;
  int samples_recorded = 0;

  ControllerEvents events;
  events.on_status = [&](const std::string& s) { statuses.push_back(s); };
  events.on_warning = [&](const std::string& w) { warnings.push_back(w); };
  events.on_sample = [&](int index, int) { samples_recorded = index; };
  events.on_deployed = [&](const std::string& name, const std::string&) {
    deployed.push_back(name);
  };
  events.on_detection = [&](const cep::Detection& d) {
    detections.push_back(d);
  };

  LearningController controller(&engine, &store, ControllerConfig(), events);
  EPL_ASSERT_OK(controller.Init());
  EPL_ASSERT_OK(
      controller.BeginGesture("push_forward", {JointId::kRightHand}));

  GestureShape shape = GestureShapes::PushForward();
  UserProfile user;
  kinect::SessionBuilder session(user, 70);
  session.Idle(0.6);
  for (int i = 0; i < 3; ++i) {
    session.Perform(GestureShapes::Wave());       // control: arm recording
    session.Perform(shape, /*dwell_s=*/0.9);      // dwell-gesture-dwell
    session.Idle(0.4);
  }
  session.Perform(GestureShapes::TwoHandSwipe());  // control: finish
  session.Idle(0.6);
  session.Perform(shape, 0.4);                     // testing phase
  session.Idle(0.6);

  EPL_ASSERT_OK(controller.PushFrames(session.frames()));

  EXPECT_EQ(controller.phase(), ControllerPhase::kTesting);
  EXPECT_EQ(samples_recorded, 3);
  ASSERT_EQ(deployed.size(), 1u);
  EXPECT_EQ(deployed[0], "push_forward");
  EXPECT_GE(detections.size(), 1u);
  EXPECT_EQ(detections[0].name, "push_forward");
  // The gesture landed in the database.
  EXPECT_TRUE(store.Exists("push_forward"));
  EPL_ASSERT_OK_AND_ASSIGN(core::GestureDefinition stored,
                           store.Get("push_forward"));
  EXPECT_EQ(stored.sample_count, 3);
  // The generated query text is available.
  EXPECT_NE(controller.last_query_text().find("SELECT \"push_forward\""),
            std::string::npos);
}

TEST(ControllerTest, ManualTriggersWork) {
  stream::StreamEngine engine;
  LearningController controller(&engine, nullptr);
  EPL_ASSERT_OK(controller.Init());
  EPL_ASSERT_OK(controller.BeginGesture("g", {JointId::kRightHand}));

  // Manual trigger instead of the wave gesture.
  EPL_ASSERT_OK(controller.TriggerRecording());
  UserProfile user;
  kinect::SessionBuilder session(user, 71);
  session.Perform(GestureShapes::SwipeRight(), 0.9);
  EPL_ASSERT_OK(controller.PushFrames(session.frames()));
  EXPECT_EQ(controller.sample_count(), 1);

  EPL_ASSERT_OK(controller.FinishLearning());
  EXPECT_EQ(controller.phase(), ControllerPhase::kTesting);
  EXPECT_EQ(controller.deployed_gestures(),
            (std::vector<std::string>{"g"}));
}

TEST(ControllerTest, FinishWithoutSamplesFails) {
  stream::StreamEngine engine;
  LearningController controller(&engine, nullptr);
  EPL_ASSERT_OK(controller.Init());
  EPL_ASSERT_OK(controller.BeginGesture("g", {JointId::kRightHand}));
  Status status = controller.FinishLearning();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ControllerTest, BeginRejectsReservedControlNames) {
  stream::StreamEngine engine;
  LearningController controller(&engine, nullptr);
  EPL_ASSERT_OK(controller.Init());
  // A user gesture under a control name would hot-swap the control query
  // out of the shared runtime.
  EXPECT_EQ(controller.BeginGesture(kControlWaveName, {JointId::kRightHand})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(controller.BeginGesture("__anything", {JointId::kRightHand})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(controller.runtime()->IsDeployed(kControlWaveName));
}

TEST(ControllerTest, BeginRequiresInit) {
  stream::StreamEngine engine;
  LearningController controller(&engine, nullptr);
  EXPECT_EQ(controller.BeginGesture("g", {JointId::kRightHand}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ControllerTest, RelearningReplacesDeployment) {
  stream::StreamEngine engine;
  LearningController controller(&engine, nullptr);
  EPL_ASSERT_OK(controller.Init());

  UserProfile user;
  for (int round = 0; round < 2; ++round) {
    EPL_ASSERT_OK(controller.BeginGesture("g", {JointId::kRightHand}));
    EPL_ASSERT_OK(controller.TriggerRecording());
    kinect::SessionBuilder session(user, 72 + static_cast<uint64_t>(round));
    session.Perform(GestureShapes::SwipeRight(), 0.9);
    EPL_ASSERT_OK(controller.PushFrames(session.frames()));
    EPL_ASSERT_OK(controller.FinishLearning());
  }
  EXPECT_EQ(controller.deployed_gestures().size(), 1u);
  kinect::SessionBuilder tail(user, 99);
  tail.Idle(0.2);
  EPL_ASSERT_OK(controller.PushFrames(tail.frames()));
  // Everything multiplexes over the shared runtime: the engine holds ONE
  // fused operator (control gestures + the learned gesture) plus the
  // frame tap, and the re-learn swapped the query inside the operator
  // instead of adding a deployment.
  EXPECT_EQ(engine.deployment_count(), 2u);
  EXPECT_EQ(controller.runtime()->num_channels(), 1u);
  // 2 control queries + 1 learned gesture, the re-learn replaced in place.
  EXPECT_EQ(controller.runtime()->num_deployed(), 3u);
  EXPECT_TRUE(controller.runtime()->IsDeployed("g"));
}

// Satellite of the runtime refactor: re-learning a deployed gesture
// mid-stream swaps its query at an exact event boundary without dropping
// or duplicating detections of OTHER live gestures, and the swapped
// gesture's detections split cleanly into old-definition prefix and
// new-definition suffix.
TEST(GestureRuntimeTest, MidStreamRelearnDoesNotPerturbOtherGestures) {
  using cep::testing::DetectionRecord;
  using cep::testing::Recorder;
  using cep::testing::Train;
  using cep::testing::Workload;

  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 100);
  const core::GestureDefinition raise = Train(GestureShapes::RaiseHand(), 200);
  core::GestureDefinition raise_v2 = raise;
  for (core::PoseWindow& pose : raise_v2.poses) {
    for (auto& [joint, window] : pose.joints) {
      (void)joint;
      window.half_width *= 1.2;  // a re-learned, slightly looser variant
    }
  }
  const std::vector<stream::Event> events = Workload(31);
  const size_t swap_at = events.size() / 2;

  // Baseline: no re-learn.
  std::vector<DetectionRecord> swipe_base, raise_base;
  {
    stream::StreamEngine engine;
    EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK(runtime.Deploy(swipe, Recorder(&swipe_base)));
    EPL_ASSERT_OK(runtime.Deploy(raise, Recorder(&raise_base)));
    for (const stream::Event& event : events) {
      EPL_ASSERT_OK(engine.Push("kinect", event));
    }
  }

  // Re-learn `raise` mid-stream: hot-swap at the event boundary.
  std::vector<DetectionRecord> swipe_swapped, raise_swapped;
  {
    stream::StreamEngine engine;
    EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK(runtime.Deploy(swipe, Recorder(&swipe_swapped)));
    EPL_ASSERT_OK(runtime.Deploy(raise, Recorder(&raise_swapped)));
    for (size_t i = 0; i < events.size(); ++i) {
      if (i == swap_at) {
        EPL_ASSERT_OK(runtime.Deploy(raise_v2, Recorder(&raise_swapped)));
        EXPECT_EQ(runtime.DeployedGestures(),
                  (std::vector<std::string>{"raise_hand", "swipe_right"}));
      }
      EPL_ASSERT_OK(engine.Push("kinect", events[i]));
    }
  }
  // The unrelated gesture is bit-identical to the baseline.
  EXPECT_EQ(swipe_swapped, swipe_base);
  EXPECT_FALSE(swipe_base.empty());

  // The swapped gesture equals old-definition-on-prefix plus
  // new-definition-on-suffix (the new query starts with empty run state at
  // the boundary).
  std::vector<DetectionRecord> expected;
  {
    stream::StreamEngine engine;
    EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK(runtime.Deploy(raise, Recorder(&expected)));
    for (size_t i = 0; i < swap_at; ++i) {
      EPL_ASSERT_OK(engine.Push("kinect", events[i]));
    }
  }
  {
    stream::StreamEngine engine;
    EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK(runtime.Deploy(raise_v2, Recorder(&expected)));
    for (size_t i = swap_at; i < events.size(); ++i) {
      EPL_ASSERT_OK(engine.Push("kinect", events[i]));
    }
  }
  EXPECT_EQ(raise_swapped, expected);
  EXPECT_FALSE(raise_swapped.empty());
}

}  // namespace
}  // namespace epl::workflow
