// End-to-end tests of the learning pipeline (paper Sec. 3.3): synthesize
// samples -> transform -> distance-based sampling -> window merging ->
// query generation -> deployment -> detection on unseen users.

#include <gtest/gtest.h>

#include "core/learner.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "query/compiler.h"
#include "query/unparser.h"
#include "test_util.h"
#include "transform/transform.h"
#include "transform/view.h"

namespace epl::core {
namespace {

using kinect::GestureShape;
using kinect::GestureShapes;
using kinect::JointId;
using kinect::MotionParams;
using kinect::SkeletonFrame;
using kinect::SynthesizeSample;
using kinect::UserProfile;

std::vector<SkeletonFrame> TransformedSample(const UserProfile& profile,
                                             const GestureShape& shape,
                                             uint64_t seed) {
  MotionParams params;  // defaults: noisy, jittered
  std::vector<SkeletonFrame> frames =
      SynthesizeSample(profile, shape, seed, params);
  for (SkeletonFrame& frame : frames) {
    frame = transform::TransformFrame(frame, transform::TransformConfig());
  }
  return frames;
}

/// Trains a learner on `num_samples` recordings of `shape`.
GestureLearner TrainedLearner(const GestureShape& shape, int num_samples,
                              uint64_t seed_base = 1000) {
  GestureLearner learner(shape.name, shape.InvolvedJoints());
  UserProfile trainer;
  for (int i = 0; i < num_samples; ++i) {
    Status status = learner.AddSample(
        TransformedSample(trainer, shape, seed_base + i));
    EPL_CHECK(status.ok()) << status;
  }
  return learner;
}

TEST(LearnerTest, LearnsSwipeRightDefinition) {
  GestureLearner learner = TrainedLearner(GestureShapes::SwipeRight(), 4);
  EXPECT_EQ(learner.sample_count(), 4);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, learner.Learn());
  EPL_ASSERT_OK(def.Validate());
  EXPECT_EQ(def.name, "swipe_right");
  EXPECT_EQ(def.source_stream, "kinect_t");
  // A handful of characteristic poses, not one per 30 Hz tuple.
  EXPECT_GE(def.poses.size(), 3u);
  EXPECT_LE(def.poses.size(), 12u);
  // The path runs left-to-right: the last pose center is far to the right
  // of the first.
  double first_x = def.poses.front().joints.at(JointId::kRightHand).center.x;
  double last_x = def.poses.back().joints.at(JointId::kRightHand).center.x;
  EXPECT_GT(last_x - first_x, 400.0);
  // Heights stay near the shape's 150 mm above the torso.
  for (const PoseWindow& pose : def.poses) {
    EXPECT_NEAR(pose.joints.at(JointId::kRightHand).center.y, 150.0, 80.0);
  }
}

TEST(LearnerTest, CleanSamplesYieldNoWarnings) {
  GestureLearner learner = TrainedLearner(GestureShapes::SwipeRight(), 5);
  for (const MergeWarning& warning : learner.warnings()) {
    // Pose-count resampling notices are fine; deviation warnings are not.
    EXPECT_EQ(warning.message.find("deviates"), std::string::npos)
        << warning.message;
  }
}

TEST(LearnerTest, WrongGestureSampleTriggersDeviationWarning) {
  GestureShape swipe = GestureShapes::SwipeRight();
  GestureLearner learner(swipe.name, swipe.InvolvedJoints());
  UserProfile trainer;
  EPL_ASSERT_OK(
      learner.AddSample(TransformedSample(trainer, swipe, 2000)));
  EPL_ASSERT_OK(
      learner.AddSample(TransformedSample(trainer, swipe, 2001)));
  // The user accidentally performs raise_hand while recording swipe_right.
  Status status = learner.AddSample(
      TransformedSample(trainer, GestureShapes::RaiseHand(), 2002));
  EPL_ASSERT_OK(status);  // default config merges but warns
  bool deviation = false;
  for (const MergeWarning& warning : learner.warnings()) {
    if (warning.message.find("deviates") != std::string::npos) {
      deviation = true;
    }
  }
  EXPECT_TRUE(deviation);
}

TEST(LearnerTest, GeneratedQueryHasPaperShape) {
  GestureLearner learner = TrainedLearner(GestureShapes::SwipeRight(), 3);
  EPL_ASSERT_OK_AND_ASSIGN(std::string text, learner.GenerateQueryText());
  EXPECT_NE(text.find("SELECT \"swipe_right\""), std::string::npos);
  EXPECT_NE(text.find("kinect_t("), std::string::npos);
  EXPECT_NE(text.find("abs(rHand_x"), std::string::npos);
  EXPECT_NE(text.find("within"), std::string::npos);
  EXPECT_NE(text.find("select first consume all"), std::string::npos);
  // The generated text re-parses and compiles against the kinect_t schema.
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery parsed,
                           query::ParseQuery(text));
  EPL_ASSERT_OK_AND_ASSIGN(
      query::CompiledQuery compiled,
      query::CompileQuery(parsed, transform::KinectTSchema()));
  EXPECT_EQ(compiled.source_stream, "kinect_t");
  EXPECT_GE(compiled.pattern.num_states(), 3);
}

TEST(LearnerTest, FlatQueryModeWhenGapsUniform) {
  GestureLearner learner = TrainedLearner(GestureShapes::SwipeRight(), 3);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, learner.Learn());
  // Force uniform step budgets, then the flat (un-nested) form applies.
  for (size_t i = 1; i < def.poses.size(); ++i) {
    def.poses[i].max_gap = kSecond;
  }
  QueryGenConfig config;
  config.nest_like_paper = false;
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery parsed,
                           GenerateQuery(def, config));
  EXPECT_EQ(parsed.pattern->children().size(), def.poses.size());
  // Non-uniform budgets fall back to nesting even in flat mode.
  def.poses.back().max_gap = 2 * kSecond;
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery nested,
                           GenerateQuery(def, config));
  EXPECT_EQ(nested.pattern->children().size(), 2u);
}

struct DetectionCounts {
  int true_positives = 0;
  int detections = 0;
};

/// Deploys `def` and plays `sessions` through the engine; returns how many
/// sessions produced >= 1 detection and the total detection count.
DetectionCounts RunDetection(
    const GestureDefinition& def,
    const std::vector<std::vector<SkeletonFrame>>& sessions) {
  DetectionCounts counts;
  for (const std::vector<SkeletonFrame>& frames : sessions) {
    stream::StreamEngine engine;
    EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
    EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
    int session_detections = 0;
    Result<stream::DeploymentId> id = DeployGesture(
        &engine, def,
        [&session_detections](const cep::Detection&) {
          ++session_detections;
        });
    EPL_CHECK(id.ok()) << id.status();
    EPL_CHECK(kinect::PlayFrames(&engine, frames).ok());
    counts.detections += session_detections;
    if (session_detections > 0) {
      ++counts.true_positives;
    }
  }
  return counts;
}

std::vector<SkeletonFrame> RawPerformance(const UserProfile& profile,
                                          const GestureShape& shape,
                                          uint64_t seed) {
  kinect::SessionBuilder builder(profile, seed);
  builder.Idle(0.6).Perform(shape, 0.4).Idle(0.6);
  return builder.TakeFrames();
}

TEST(LearnerTest, DetectsGestureFromUnseenUsers) {
  GestureShape shape = GestureShapes::SwipeRight();
  GestureLearner learner = TrainedLearner(shape, 4);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, learner.Learn());

  // Test users differ from the trainer in position, size, orientation.
  std::vector<UserProfile> users(4);
  users[1].torso_position = Vec3(-500, 250, 2800);
  users[2].height_mm = 1250;
  users[3].yaw_rad = 0.5;
  users[3].torso_position = Vec3(300, 0, 1700);

  std::vector<std::vector<SkeletonFrame>> sessions;
  uint64_t seed = 7000;
  for (const UserProfile& user : users) {
    sessions.push_back(RawPerformance(user, shape, seed++));
  }
  DetectionCounts counts = RunDetection(def, sessions);
  EXPECT_EQ(counts.true_positives, 4) << "every user must be detected";
}

TEST(LearnerTest, DoesNotDetectOtherGestures) {
  GestureLearner learner = TrainedLearner(GestureShapes::SwipeRight(), 4);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, learner.Learn());

  UserProfile user;
  std::vector<std::vector<SkeletonFrame>> sessions;
  sessions.push_back(
      RawPerformance(user, GestureShapes::RaiseHand(), 8100));
  sessions.push_back(RawPerformance(user, GestureShapes::Circle(), 8101));
  sessions.push_back(
      RawPerformance(user, GestureShapes::PushForward(), 8102));
  DetectionCounts counts = RunDetection(def, sessions);
  EXPECT_EQ(counts.true_positives, 0)
      << "selectivity: other gestures must not fire swipe_right";
}

TEST(LearnerTest, SwipeLeftIsNotSwipeRight) {
  // The mirrored gesture traverses the same region in the opposite order;
  // the sequence operator must reject it.
  GestureLearner learner = TrainedLearner(GestureShapes::SwipeRight(), 4);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, learner.Learn());
  UserProfile user;
  DetectionCounts counts = RunDetection(
      def, {RawPerformance(user, GestureShapes::SwipeLeft(), 8200)});
  EXPECT_EQ(counts.true_positives, 0);
}

TEST(LearnerTest, TwoHandGestureLearnsBothHands) {
  GestureShape shape = GestureShapes::TwoHandSwipe();
  GestureLearner learner = TrainedLearner(shape, 3, 3000);
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def, learner.Learn());
  EXPECT_EQ(def.joints.size(), 2u);
  for (const PoseWindow& pose : def.poses) {
    EXPECT_TRUE(pose.joints.count(JointId::kRightHand));
    EXPECT_TRUE(pose.joints.count(JointId::kLeftHand));
  }
  // Detection fires for a new performance.
  UserProfile user;
  user.height_mm = 1600;
  DetectionCounts counts =
      RunDetection(def, {RawPerformance(user, shape, 9000)});
  EXPECT_EQ(counts.true_positives, 1);
  // A single-hand swipe must not fire the two-hand gesture.
  counts = RunDetection(
      def, {RawPerformance(user, GestureShapes::SwipeRight(), 9001)});
  EXPECT_EQ(counts.true_positives, 0);
}

TEST(LearnerTest, MoreSamplesWidenWindows) {
  GestureShape shape = GestureShapes::SwipeRight();
  GeneralizationConfig tight;
  tight.min_half_width_mm = 1.0;
  LearnerConfig config;
  config.generalize = tight;

  GestureLearner one(shape.name, shape.InvolvedJoints(), config);
  GestureLearner five(shape.name, shape.InvolvedJoints(), config);
  UserProfile trainer;
  EPL_ASSERT_OK(one.AddSample(TransformedSample(trainer, shape, 4000)));
  for (int i = 0; i < 5; ++i) {
    EPL_ASSERT_OK(five.AddSample(TransformedSample(trainer, shape, 4000 + i)));
  }
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def_one, one.Learn());
  EPL_ASSERT_OK_AND_ASSIGN(GestureDefinition def_five, five.Learn());
  auto total_width = [](const GestureDefinition& def) {
    double sum = 0.0;
    for (const PoseWindow& pose : def.poses) {
      for (const auto& [joint, window] : pose.joints) {
        sum += window.half_width.x + window.half_width.y +
               window.half_width.z;
      }
    }
    return sum;
  };
  EXPECT_GT(total_width(def_five), total_width(def_one));
}

}  // namespace
}  // namespace epl::core
