// Durability primitives: the framed event WAL (torn-tail truncation,
// rotation, pruning), the binary codec, the snapshot file format
// (atomicity, corruption fallback), and behavior under injected disk
// faults (short writes / ENOSPC through the FileSystem seam).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "durability/codec.h"
#include "durability/event_log.h"
#include "durability/file.h"
#include "durability/snapshot.h"
#include "test_util.h"

namespace epl::durability {
namespace {

using epl::testing::ScopedTempDir;

// ---------------------------------------------------------------------------
// Fault injection through the FileSystem seam.

class FaultInjectingFileSystem;

/// Append-only file that commits only a budgeted byte prefix: the write
/// that exhausts the budget lands partially (a genuinely torn tail, like
/// ENOSPC mid-write) and fails.
class FaultFile : public File {
 public:
  FaultFile(std::unique_ptr<File> base, int64_t* budget)
      : base_(std::move(base)), budget_(budget) {}

  Status Append(std::string_view data) override {
    if (*budget_ >= 0) {
      if (static_cast<int64_t>(data.size()) > *budget_) {
        const size_t prefix = static_cast<size_t>(*budget_);
        *budget_ = 0;
        if (prefix > 0) {
          EPL_RETURN_IF_ERROR(base_->Append(data.substr(0, prefix)));
        }
        return ResourceExhaustedError("injected ENOSPC (short write)");
      }
      *budget_ -= static_cast<int64_t>(data.size());
    }
    return base_->Append(data);
  }

  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<File> base_;
  int64_t* budget_;
};

class FaultInjectingFileSystem : public FileSystem {
 public:
  /// Bytes that may still be appended before writes start failing;
  /// negative disables injection.
  int64_t write_budget = -1;

  Result<std::unique_ptr<File>> OpenAppend(const std::string& path) override {
    EPL_ASSIGN_OR_RETURN(std::unique_ptr<File> base,
                         DefaultFileSystem()->OpenAppend(path));
    return std::unique_ptr<File>(
        new FaultFile(std::move(base), &write_budget));
  }
  Result<std::string> ReadFile(const std::string& path) override {
    return DefaultFileSystem()->ReadFile(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return DefaultFileSystem()->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return DefaultFileSystem()->CreateDir(dir);
  }
  Status Remove(const std::string& path) override {
    return DefaultFileSystem()->Remove(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return DefaultFileSystem()->Rename(from, to);
  }
  Status Truncate(const std::string& path, uint64_t size) override {
    return DefaultFileSystem()->Truncate(path, size);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return DefaultFileSystem()->FileSize(path);
  }
  bool Exists(const std::string& path) override {
    return DefaultFileSystem()->Exists(path);
  }
  Status SyncDir(const std::string& dir) override {
    return DefaultFileSystem()->SyncDir(dir);
  }
};

std::vector<std::pair<uint64_t, std::string>> ReplayAll(EventLog* log,
                                                        uint64_t from = 0) {
  std::vector<std::pair<uint64_t, std::string>> records;
  EPL_EXPECT_OK(log->Replay(from, [&](uint64_t seq, std::string_view payload) {
    records.emplace_back(seq, std::string(payload));
    return OkStatus();
  }));
  return records;
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  file.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&c, 1);
}

// ---------------------------------------------------------------------------
// Codec.

TEST(Crc32Test, ChainsIncrementally) {
  EXPECT_EQ(Crc32c("hello world"), Crc32c(" world", Crc32c("hello")));
  EXPECT_NE(Crc32c("hello"), Crc32c("hellp"));
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32Test, MatchesTheCrc32cReferenceVector) {
  // CRC-32C (Castagnoli) check value: the on-disk format depends on this
  // exact polynomial and reflection, and the hardware and software
  // implementations must both match the published vector.
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  // Cover the block path (>= 8-byte chunks) against bytewise chaining.
  const std::string long_input(1027, 'x');
  uint32_t chained = 0;
  for (const char ch : long_input) {
    chained = Crc32c(std::string_view(&ch, 1), chained);
  }
  EXPECT_EQ(Crc32c(long_input), chained);
}

TEST(ByteCodecTest, RoundTripsEveryType) {
  ByteWriter out;
  out.PutU8(0xab);
  out.PutU32(0xdeadbeef);
  out.PutU64(0x0123456789abcdefull);
  out.PutI64(-42);
  out.PutDouble(-0.5);
  out.PutString("payload");

  ByteReader in(out.str());
  EPL_ASSERT_OK_AND_ASSIGN(uint8_t u8, in.ReadU8());
  EXPECT_EQ(u8, 0xab);
  EPL_ASSERT_OK_AND_ASSIGN(uint32_t u32, in.ReadU32());
  EXPECT_EQ(u32, 0xdeadbeefu);
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t u64, in.ReadU64());
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EPL_ASSERT_OK_AND_ASSIGN(int64_t i64, in.ReadI64());
  EXPECT_EQ(i64, -42);
  EPL_ASSERT_OK_AND_ASSIGN(double d, in.ReadDouble());
  EXPECT_EQ(d, -0.5);
  EPL_ASSERT_OK_AND_ASSIGN(std::string s, in.ReadString());
  EXPECT_EQ(s, "payload");
  EXPECT_TRUE(in.done());
}

TEST(ByteCodecTest, EveryTruncationIsAnErrorNotACrash) {
  ByteWriter out;
  out.PutU32(7);
  out.PutString("abc");
  out.PutDouble(1.5);
  const std::string full = out.str();
  for (size_t len = 0; len < full.size(); ++len) {
    ByteReader in(std::string_view(full).substr(0, len));
    // Read the same shape; at least one read must fail with DataLoss.
    auto read_all = [&]() -> Status {
      EPL_ASSIGN_OR_RETURN(uint32_t v, in.ReadU32());
      (void)v;
      EPL_ASSIGN_OR_RETURN(std::string s, in.ReadString());
      (void)s;
      EPL_ASSIGN_OR_RETURN(double d, in.ReadDouble());
      (void)d;
      return OkStatus();
    };
    Status status = read_all();
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// EventLog.

TEST(EventLogTest, AppendReplayRoundTrip) {
  ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path()));
  for (int i = 0; i < 10; ++i) {
    EPL_ASSERT_OK_AND_ASSIGN(uint64_t seq,
                             log->Append("payload-" + std::to_string(i)));
    EXPECT_EQ(seq, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(log->next_seq(), 10u);
  auto records = ReplayAll(log.get());
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, i);
    EXPECT_EQ(records[i].second, "payload-" + std::to_string(i));
  }
  // Replay from the middle.
  EXPECT_EQ(ReplayAll(log.get(), 7).size(), 3u);
}

TEST(EventLogTest, ReopenContinuesSequence) {
  ScopedTempDir dir;
  {
    EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                             EventLog::Open(dir.path()));
    for (int i = 0; i < 5; ++i) {
      EPL_EXPECT_OK(log->Append("a" + std::to_string(i)).status());
    }
  }
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path()));
  EXPECT_EQ(log->next_seq(), 5u);
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t seq, log->Append("b"));
  EXPECT_EQ(seq, 5u);
  EXPECT_EQ(ReplayAll(log.get()).size(), 6u);
}

TEST(EventLogTest, RotatesBySizeAndDropsCoveredSegments) {
  ScopedTempDir dir;
  EventLogOptions options;
  options.segment_bytes = 1;  // every record rotates
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path(), options));
  for (int i = 0; i < 8; ++i) {
    EPL_EXPECT_OK(log->Append("r" + std::to_string(i)).status());
  }
  EXPECT_GE(log->SegmentNames().size(), 8u);
  EPL_EXPECT_OK(log->DropSegmentsBelow(5));
  // Records 5..7 must survive; nothing below.
  auto records = ReplayAll(log.get(), 0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.front().first, 5u);
  EXPECT_EQ(records.back().first, 7u);
  // A reopen agrees.
  log.reset();
  EPL_ASSERT_OK_AND_ASSIGN(log, EventLog::Open(dir.path(), options));
  EXPECT_EQ(log->next_seq(), 8u);
  EXPECT_EQ(ReplayAll(log.get()).size(), 3u);
}

TEST(EventLogTest, ExplicitRotationIsNoOpWhileEmpty) {
  ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path()));
  EPL_EXPECT_OK(log->RotateSegment());
  EPL_EXPECT_OK(log->RotateSegment());
  EXPECT_EQ(log->SegmentNames().size(), 1u);
  EPL_EXPECT_OK(log->Append("x").status());
  EPL_EXPECT_OK(log->RotateSegment());
  EXPECT_EQ(log->SegmentNames().size(), 2u);
}

TEST(EventLogTest, TornTailIsTruncatedOnOpen) {
  ScopedTempDir dir;
  std::string tail_path;
  {
    EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                             EventLog::Open(dir.path()));
    for (int i = 0; i < 4; ++i) {
      EPL_EXPECT_OK(log->Append("record-" + std::to_string(i)).status());
    }
    tail_path = dir.path() + "/" + log->SegmentNames().back();
  }
  // Chop into the last record's body: a torn append.
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t size,
                           DefaultFileSystem()->FileSize(tail_path));
  EPL_ASSERT_OK(DefaultFileSystem()->Truncate(tail_path, size - 3));
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path()));
  EXPECT_EQ(log->next_seq(), 3u);
  EXPECT_EQ(ReplayAll(log.get()).size(), 3u);
  // The log is appendable again and reuses the dropped sequence number.
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t seq, log->Append("replacement"));
  EXPECT_EQ(seq, 3u);
}

TEST(EventLogTest, HeaderOnlyTornTailIsTruncatedToo) {
  ScopedTempDir dir;
  std::string tail_path;
  {
    EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                             EventLog::Open(dir.path()));
    EPL_EXPECT_OK(log->Append("one").status());
    EPL_EXPECT_OK(log->Append("two").status());
    tail_path = dir.path() + "/" + log->SegmentNames().back();
  }
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t size,
                           DefaultFileSystem()->FileSize(tail_path));
  // Leave 5 bytes of the second record: less than a full header.
  const uint64_t second_record = 4 + 4 + 8 + 3;  // header | seq | "two"
  EPL_ASSERT_OK(DefaultFileSystem()->Truncate(
      tail_path, size - second_record + 5));
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path()));
  EXPECT_EQ(log->next_seq(), 1u);
}

TEST(EventLogTest, BitFlipAtLiveTailTruncatesOnOpen) {
  ScopedTempDir dir;
  std::string tail_path;
  uint64_t size = 0;
  {
    EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                             EventLog::Open(dir.path()));
    for (int i = 0; i < 3; ++i) {
      EPL_EXPECT_OK(log->Append("record-" + std::to_string(i)).status());
    }
    tail_path = dir.path() + "/" + log->SegmentNames().back();
  }
  EPL_ASSERT_OK_AND_ASSIGN(size, DefaultFileSystem()->FileSize(tail_path));
  FlipByte(tail_path, static_cast<size_t>(size) - 1);  // inside record 2
  EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                           EventLog::Open(dir.path()));
  EXPECT_EQ(log->next_seq(), 2u);
  EXPECT_EQ(ReplayAll(log.get()).size(), 2u);
}

TEST(EventLogTest, CorruptionInClosedSegmentIsDataLoss) {
  ScopedTempDir dir;
  std::string first_path;
  {
    EventLogOptions options;
    options.segment_bytes = 1;
    EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<EventLog> log,
                             EventLog::Open(dir.path(), options));
    EPL_EXPECT_OK(log->Append("first-segment-record").status());
    EPL_EXPECT_OK(log->Append("second-segment-record").status());
    first_path = dir.path() + "/" + log->SegmentNames().front();
  }
  FlipByte(first_path, 12);  // body of the first (closed) segment's record
  Result<std::unique_ptr<EventLog>> reopened = EventLog::Open(dir.path());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reopened.status().message().find("wal-"), std::string::npos);
}

TEST(EventLogTest, ShortWriteSealsTheLogAndReopenRecovers) {
  ScopedTempDir dir;
  FaultInjectingFileSystem fs;
  EPL_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<EventLog> log,
      EventLog::Open(dir.path(), EventLogOptions(), &fs));
  EPL_EXPECT_OK(log->Append("durable-one").status());
  EPL_EXPECT_OK(log->Append("durable-two").status());
  // The next record lands only partially.
  fs.write_budget = 10;
  Result<uint64_t> failed = log->Append("this-record-is-torn");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  // Sticky: the log refuses everything until reopened.
  fs.write_budget = -1;
  EXPECT_FALSE(log->Append("after-the-fault").ok());
  EXPECT_FALSE(log->Sync().ok());
  log.reset();
  // Reopen repairs the torn tail; everything that returned OK survives.
  EPL_ASSERT_OK_AND_ASSIGN(log,
                           EventLog::Open(dir.path(), EventLogOptions(), &fs));
  auto records = ReplayAll(log.get());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].second, "durable-one");
  EXPECT_EQ(records[1].second, "durable-two");
  EPL_ASSERT_OK_AND_ASSIGN(uint64_t seq, log->Append("healed"));
  EXPECT_EQ(seq, 2u);
}

// ---------------------------------------------------------------------------
// WalRecord / run-state codec.

TEST(WalRecordTest, RoundTripsEveryType) {
  std::vector<WalRecord> records(5);
  records[0].type = WalRecord::Type::kEvent;
  records[0].session = 3;
  records[0].event.timestamp = 123456;
  records[0].event.values = {1.5, -2.5, 0.0};
  records[1].type = WalRecord::Type::kOpenSession;
  records[1].session = 7;
  records[1].name = "alice";
  records[2].type = WalRecord::Type::kCloseSession;
  records[2].session = 7;
  records[3].type = WalRecord::Type::kDeploy;
  records[3].session = -1;
  records[3].name = "swipe";
  records[3].definition = "epl-gesture v1\nname: swipe\n...";
  records[4].type = WalRecord::Type::kUndeploy;
  records[4].session = 2;
  records[4].name = "swipe";

  for (const WalRecord& record : records) {
    const std::string encoded = EncodeWalRecord(record);
    EPL_ASSERT_OK_AND_ASSIGN(WalRecord decoded, DecodeWalRecord(encoded));
    EXPECT_EQ(decoded.type, record.type);
    EXPECT_EQ(decoded.session, record.session);
    EXPECT_EQ(decoded.event.timestamp, record.event.timestamp);
    EXPECT_EQ(decoded.event.values, record.event.values);
    EXPECT_EQ(decoded.name, record.name);
    EXPECT_EQ(decoded.definition, record.definition);
  }
}

TEST(WalRecordTest, RejectsCorruptInput) {
  WalRecord record;
  record.type = WalRecord::Type::kDeploy;
  record.name = "g";
  record.definition = "d";
  const std::string encoded = EncodeWalRecord(record);
  // Every prefix fails cleanly.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeWalRecord(encoded.substr(0, len)).ok()) << len;
  }
  // Unknown type byte.
  std::string bad = encoded;
  bad[0] = 99;
  EXPECT_FALSE(DecodeWalRecord(bad).ok());
  // Trailing garbage.
  EXPECT_FALSE(DecodeWalRecord(encoded + "x").ok());
}

cep::NfaRunState SampleRunState() {
  cep::NfaRunState state;
  state.runs.resize(2);
  state.runs[0].state = 0;
  state.runs[0].times = {100};
  state.runs[1].state = 2;
  state.runs[1].times = {100, 250, 420};
  state.stats.events = 77;
  state.stats.predicate_evaluations = 55;
  state.stats.predicate_cache_hits = 44;
  state.stats.matches = 3;
  state.stats.dropped_runs = 1;
  state.stats.peak_runs = 9;
  return state;
}

TEST(RunStateCodecTest, RoundTrips) {
  const cep::NfaRunState state = SampleRunState();
  ByteWriter out;
  EncodeRunState(state, &out);
  ByteReader in(out.str());
  EPL_ASSERT_OK_AND_ASSIGN(cep::NfaRunState decoded, DecodeRunState(&in));
  EXPECT_TRUE(in.done());
  ASSERT_EQ(decoded.runs.size(), state.runs.size());
  for (size_t i = 0; i < decoded.runs.size(); ++i) {
    EXPECT_EQ(decoded.runs[i].state, state.runs[i].state);
    EXPECT_EQ(decoded.runs[i].times, state.runs[i].times);
  }
  EXPECT_EQ(decoded.stats.events, state.stats.events);
  EXPECT_EQ(decoded.stats.matches, state.stats.matches);
  EXPECT_EQ(decoded.stats.peak_runs, state.stats.peak_runs);
}

// ---------------------------------------------------------------------------
// Snapshot files.

Snapshot SampleSnapshot(uint64_t wal_seq) {
  Snapshot snapshot;
  snapshot.wal_seq = wal_seq;
  snapshot.next_session_id = 4;
  SessionState local;
  local.id = -1;
  local.ingested_events = 12;
  snapshot.sessions.push_back(local);
  SessionState alice;
  alice.id = 0;
  alice.user = "alice";
  alice.ingested_events = 900;
  snapshot.sessions.push_back(alice);
  QueryState query;
  query.session = 0;
  query.name = "swipe";
  query.query_text = "select ... from gesture_sessions";
  query.runs = SampleRunState();
  snapshot.queries.push_back(query);
  return snapshot;
}

void ExpectSnapshotEq(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.wal_seq, b.wal_seq);
  EXPECT_EQ(a.next_session_id, b.next_session_id);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].id, b.sessions[i].id);
    EXPECT_EQ(a.sessions[i].user, b.sessions[i].user);
    EXPECT_EQ(a.sessions[i].ingested_events, b.sessions[i].ingested_events);
  }
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].session, b.queries[i].session);
    EXPECT_EQ(a.queries[i].name, b.queries[i].name);
    EXPECT_EQ(a.queries[i].query_text, b.queries[i].query_text);
    EXPECT_EQ(a.queries[i].runs.runs.size(), b.queries[i].runs.runs.size());
  }
}

TEST(SnapshotTest, WriteReadRoundTrip) {
  ScopedTempDir dir;
  const Snapshot snapshot = SampleSnapshot(42);
  EPL_ASSERT_OK(WriteSnapshot(DefaultFileSystem(), dir.path(), snapshot));
  EPL_ASSERT_OK_AND_ASSIGN(Snapshot loaded,
                           ReadLatestSnapshot(DefaultFileSystem(),
                                              dir.path()));
  ExpectSnapshotEq(loaded, snapshot);
}

TEST(SnapshotTest, EmptyDirIsNotFound) {
  ScopedTempDir dir;
  Result<Snapshot> loaded =
      ReadLatestSnapshot(DefaultFileSystem(), dir.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, CorruptNewestFallsBackToOlder) {
  ScopedTempDir dir;
  EPL_ASSERT_OK(WriteSnapshot(DefaultFileSystem(), dir.path(),
                              SampleSnapshot(10)));
  EPL_ASSERT_OK(WriteSnapshot(DefaultFileSystem(), dir.path(),
                              SampleSnapshot(20)));
  // Flip one byte in the newest snapshot's body.
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<std::string> names,
                           DefaultFileSystem()->ListDir(dir.path()));
  ASSERT_EQ(names.size(), 2u);
  FlipByte(dir.path() + "/" + names.back(), 40);
  EPL_ASSERT_OK_AND_ASSIGN(Snapshot loaded,
                           ReadLatestSnapshot(DefaultFileSystem(),
                                              dir.path()));
  EXPECT_EQ(loaded.wal_seq, 10u);
}

TEST(SnapshotTest, RemoveStaleKeepsCoveringSnapshotAndDropsTmp) {
  ScopedTempDir dir;
  EPL_ASSERT_OK(WriteSnapshot(DefaultFileSystem(), dir.path(),
                              SampleSnapshot(10)));
  EPL_ASSERT_OK(WriteSnapshot(DefaultFileSystem(), dir.path(),
                              SampleSnapshot(20)));
  // A leftover tmp from an interrupted write.
  {
    EPL_ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<File> tmp,
        DefaultFileSystem()->OpenAppend(dir.path() +
                                        "/snapshot-galaxy.snap.tmp"));
    EPL_ASSERT_OK(tmp->Append("partial"));
    EPL_ASSERT_OK(tmp->Close());
  }
  EPL_ASSERT_OK(RemoveStaleSnapshots(DefaultFileSystem(), dir.path(), 20));
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<std::string> names,
                           DefaultFileSystem()->ListDir(dir.path()));
  ASSERT_EQ(names.size(), 1u);
  EXPECT_NE(names[0].find("00000000000000000020"), std::string::npos);
}

TEST(SnapshotTest, CorruptionMatrixNeverCrashes) {
  ScopedTempDir dir;
  EPL_ASSERT_OK(WriteSnapshot(DefaultFileSystem(), dir.path(),
                              SampleSnapshot(5)));
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<std::string> names,
                           DefaultFileSystem()->ListDir(dir.path()));
  ASSERT_EQ(names.size(), 1u);
  const std::string path = dir.path() + "/" + names[0];
  EPL_ASSERT_OK_AND_ASSIGN(std::string good,
                           DefaultFileSystem()->ReadFile(path));

  ScopedTempDir scratch;
  const std::string victim = scratch.path() + "/" + names[0];
  auto write_victim = [&](const std::string& bytes) {
    (void)DefaultFileSystem()->Remove(victim);
    EPL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<File> file,
                             DefaultFileSystem()->OpenAppend(victim));
    EPL_ASSERT_OK(file->Append(bytes));
    EPL_ASSERT_OK(file->Close());
  };
  // Every truncation fails cleanly (only the full file parses).
  for (size_t len = 0; len < good.size(); ++len) {
    write_victim(good.substr(0, len));
    Result<Snapshot> loaded =
        ReadLatestSnapshot(DefaultFileSystem(), scratch.path());
    EXPECT_FALSE(loaded.ok()) << "truncated to " << len;
  }
  // Every single-byte flip fails cleanly (the CRC covers the whole body,
  // the header fields are each validated).
  for (size_t offset = 0; offset < good.size(); ++offset) {
    std::string flipped = good;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x01);
    write_victim(flipped);
    Result<Snapshot> loaded =
        ReadLatestSnapshot(DefaultFileSystem(), scratch.path());
    EXPECT_FALSE(loaded.ok()) << "flipped offset " << offset;
  }
}

TEST(SnapshotTest, EnospcDuringWriteLeavesNoVisibleSnapshot) {
  ScopedTempDir dir;
  FaultInjectingFileSystem fs;
  EPL_ASSERT_OK(WriteSnapshot(&fs, dir.path(), SampleSnapshot(10)));
  fs.write_budget = 16;  // the next write dies inside the new file
  Status failed = WriteSnapshot(&fs, dir.path(), SampleSnapshot(20));
  ASSERT_FALSE(failed.ok());
  // The interrupted write is invisible: recovery still reads snapshot 10.
  fs.write_budget = -1;
  EPL_ASSERT_OK_AND_ASSIGN(Snapshot loaded,
                           ReadLatestSnapshot(&fs, dir.path()));
  EXPECT_EQ(loaded.wal_seq, 10u);
  // And the tmp leftover is swept by stale removal.
  EPL_ASSERT_OK(RemoveStaleSnapshots(&fs, dir.path(), 10));
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<std::string> names,
                           fs.ListDir(dir.path()));
  ASSERT_EQ(names.size(), 1u);
}

}  // namespace
}  // namespace epl::durability
