// Run-state round-trip property: a query split-resumed THROUGH THE
// DURABILITY CODEC -- run the prefix of a workload, export its live NFA
// runs (both the checkpoint-path ExportQueryRunState and the
// rebalancing-path ExtractQuery), serialize with EncodeRunState, decode,
// and seed a fresh operator that runs the suffix -- produces detections
// bit-identical to the query running the whole workload uninterrupted.
// Exercised in dominant and exhaustive mode, ungated and with active
// session gate groups, per-event and batched, at several cut points.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cep/multi_match_operator.h"
#include "cep_workload_test_util.h"
#include "core/query_gen.h"
#include "durability/codec.h"
#include "durability/snapshot.h"
#include "kinect/sensor.h"
#include "query/compiler.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using testing::DetectionRecord;
using testing::MakeSpec;
using testing::Recorder;
using testing::TrainedDefinitions;
using testing::Workload;

constexpr int kSessions = 3;

struct WorkloadCase {
  stream::Schema schema;
  std::vector<Event> events;
  std::vector<core::GestureDefinition> definitions;
  /// Per-session gates (empty when ungated); kept alive for the specs
  /// sharing them.
  std::vector<std::shared_ptr<const CompiledPattern>> gates;
};

WorkloadCase MakeSetup(bool gated) {
  WorkloadCase setup;
  setup.schema = kinect::KinectSchema();
  setup.events = Workload(7);
  setup.definitions = TrainedDefinitions(6);
  if (gated) {
    // Multi-session form: a trailing session id cycling per event, one
    // gate per session, so every gate flips open/shut throughout the run.
    setup.schema.AddField("session");
    for (size_t i = 0; i < setup.events.size(); ++i) {
      setup.events[i].values.push_back(
          static_cast<double>(i % kSessions));
    }
    for (int k = 0; k < kSessions; ++k) {
      ExprPtr expr =
          Expr::RangePredicate("session", static_cast<double>(k), 0.5);
      PatternExprPtr pose = PatternExpr::Pose("kinect", std::move(expr));
      Result<CompiledPattern> gate =
          CompiledPattern::Compile(*pose, setup.schema);
      EPL_CHECK(gate.ok()) << gate.status();
      setup.gates.push_back(std::make_shared<const CompiledPattern>(
          std::move(gate).value()));
    }
  }
  return setup;
}

/// Compiles query `q` fresh (CompiledPattern is move-only, so every
/// deployment recompiles) with its session gate when gated.
MultiMatchOperator::QuerySpec BuildSpec(const WorkloadCase& setup, size_t q,
                                        DetectionCallback callback) {
  Result<query::ParsedQuery> parsed =
      core::GenerateQuery(setup.definitions[q]);
  EPL_CHECK(parsed.ok()) << parsed.status();
  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, setup.schema);
  EPL_CHECK(compiled.ok()) << compiled.status();
  MultiMatchOperator::QuerySpec spec =
      MakeSpec(std::move(compiled).value(), std::move(callback));
  if (!setup.gates.empty()) {
    spec.gate = setup.gates[q % kSessions];
  }
  return spec;
}

/// One EncodeRunState -> bytes -> DecodeRunState pass; every checkpoint
/// and recovery crosses exactly this boundary.
NfaRunState ThroughCodec(const NfaRunState& state) {
  durability::ByteWriter out;
  durability::EncodeRunState(state, &out);
  durability::ByteReader in(out.str());
  Result<NfaRunState> decoded = durability::DecodeRunState(&in);
  EPL_CHECK(decoded.ok()) << decoded.status();
  EPL_CHECK(in.done());
  return std::move(decoded).value();
}

class RunStateRoundTripTest
    : public ::testing::TestWithParam<std::tuple<MatcherOptions::Mode, bool>> {
};

TEST_P(RunStateRoundTripTest, SplitResumeIsBitIdentical) {
  MatcherOptions options;
  options.mode = std::get<0>(GetParam());
  const bool gated = std::get<1>(GetParam());
  const WorkloadCase setup = MakeSetup(gated);
  const size_t n = setup.events.size();

  for (size_t batch_size : {size_t{1}, size_t{5}}) {
    // Continuous reference.
    std::vector<DetectionRecord> reference;
    {
      MultiMatchOperator op(options, batch_size);
      for (size_t q = 0; q < setup.definitions.size(); ++q) {
        op.AddQuery(BuildSpec(setup, q, Recorder(&reference)));
      }
      for (const Event& event : setup.events) {
        EPL_ASSERT_OK(op.Process(event));
      }
      op.FlushBatchedEvents();
    }
    ASSERT_FALSE(reference.empty());

    for (size_t cut : {n / 4, n / 2, 3 * n / 4}) {
      SCOPED_TRACE("batch " + std::to_string(batch_size) + " cut " +
                   std::to_string(cut));
      std::vector<DetectionRecord> detections;  // prefix + suffix combined
      MultiMatchOperator a(options, batch_size);
      std::vector<int> ids;
      for (size_t q = 0; q < setup.definitions.size(); ++q) {
        ids.push_back(a.AddQuery(BuildSpec(setup, q, Recorder(&detections))));
      }
      for (size_t i = 0; i < cut; ++i) {
        EPL_ASSERT_OK(a.Process(setup.events[i]));
      }

      // Move every query across the codec boundary into a fresh operator:
      // even ids via the non-destructive checkpoint export, odd ids via
      // destructive extraction (the detached matcher serializes the same
      // way).
      MultiMatchOperator b(options, batch_size);
      for (size_t q = 0; q < setup.definitions.size(); ++q) {
        NfaRunState state;
        if (q % 2 == 0) {
          EPL_ASSERT_OK_AND_ASSIGN(state, a.ExportQueryRunState(ids[q]));
        } else {
          EPL_ASSERT_OK_AND_ASSIGN(MultiMatchOperator::DetachedQuery detached,
                                   a.ExtractQuery(ids[q]));
          state = detached.matcher->ExportRunState();
        }
        const NfaRunState decoded = ThroughCodec(state);
        EPL_ASSERT_OK_AND_ASSIGN(
            int new_id,
            b.RestoreQuery(BuildSpec(setup, q, Recorder(&detections)),
                           decoded));
        // The restored query re-exports exactly what was imported.
        EPL_ASSERT_OK_AND_ASSIGN(NfaRunState reexported,
                                 b.ExportQueryRunState(new_id));
        ASSERT_EQ(reexported.runs.size(), decoded.runs.size());
        for (size_t r = 0; r < reexported.runs.size(); ++r) {
          EXPECT_EQ(reexported.runs[r].state, decoded.runs[r].state);
          EXPECT_EQ(reexported.runs[r].times, decoded.runs[r].times);
        }
        EXPECT_EQ(reexported.stats.events, decoded.stats.events);
        EXPECT_EQ(reexported.stats.matches, decoded.stats.matches);
      }

      for (size_t i = cut; i < n; ++i) {
        EPL_ASSERT_OK(b.Process(setup.events[i]));
      }
      b.FlushBatchedEvents();
      ASSERT_EQ(detections, reference);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RunStateRoundTripTest,
    ::testing::Combine(::testing::Values(MatcherOptions::Mode::kDominant,
                                         MatcherOptions::Mode::kExhaustive),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<MatcherOptions::Mode, bool>>&
           info) {
      std::string name = std::get<0>(info.param) ==
                                 MatcherOptions::Mode::kDominant
                             ? "Dominant"
                             : "Exhaustive";
      name += std::get<1>(info.param) ? "Gated" : "Ungated";
      return name;
    });

// Invalid run states must be rejected without adding the query.

TEST(RunStateRoundTripTest, RejectsOutOfBoundsStateIndex) {
  const WorkloadCase setup = MakeSetup(false);
  MultiMatchOperator op{MatcherOptions()};
  NfaRunState bogus;
  bogus.runs.resize(1);
  bogus.runs[0].state = 1000;  // far past the pattern's last state
  bogus.runs[0].times = {1, 2, 3};
  Result<int> restored =
      op.RestoreQuery(BuildSpec(setup, 0, [](const Detection&) {}), bogus);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(op.num_queries(), 0u);
}

TEST(RunStateRoundTripTest, RejectsWrongTimesArity) {
  const WorkloadCase setup = MakeSetup(false);
  MultiMatchOperator op{MatcherOptions()};
  NfaRunState bogus;
  bogus.runs.resize(1);
  bogus.runs[0].state = 1;
  bogus.runs[0].times = {1, 2, 3, 4, 5};  // arity must be state + 1
  Result<int> restored =
      op.RestoreQuery(BuildSpec(setup, 0, [](const Detection&) {}), bogus);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(op.num_queries(), 0u);
}

TEST(RunStateRoundTripTest, RejectsRunCountPastExhaustiveCap) {
  const WorkloadCase setup = MakeSetup(false);
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  options.max_runs = 4;
  MultiMatchOperator op(options);
  NfaRunState bogus;
  bogus.runs.resize(5);  // one past the cap
  for (auto& run : bogus.runs) {
    run.state = 0;
    run.times = {1};
  }
  Result<int> restored =
      op.RestoreQuery(BuildSpec(setup, 0, [](const Detection&) {}), bogus);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(op.num_queries(), 0u);
}

}  // namespace
}  // namespace epl::cep
