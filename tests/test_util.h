// Shared helpers for EPL tests.

#ifndef EPL_TESTS_TEST_UTIL_H_
#define EPL_TESTS_TEST_UTIL_H_

#include <string>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace epl::testing {

/// Path of the repository data/ directory (from EPL_TEST_DATA_DIR env var).
std::string TestDataDir();

/// Creates a unique writable temp directory for a test; removed on
/// destruction.
class ScopedTempDir {
 public:
  ScopedTempDir();
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace epl::testing

#define EPL_EXPECT_OK(expr)                                 \
  do {                                                      \
    const ::epl::Status epl_test_status = (expr);           \
    EXPECT_TRUE(epl_test_status.ok()) << epl_test_status;   \
  } while (false)

#define EPL_ASSERT_OK(expr)                                 \
  do {                                                      \
    const ::epl::Status epl_test_status = (expr);           \
    ASSERT_TRUE(epl_test_status.ok()) << epl_test_status;   \
  } while (false)

#define EPL_ASSERT_OK_AND_ASSIGN(decl, expr)            \
  auto EPL_RESULT_CONCAT_(epl_test_result_, __LINE__) = (expr);          \
  ASSERT_TRUE(EPL_RESULT_CONCAT_(epl_test_result_, __LINE__).ok())       \
      << EPL_RESULT_CONCAT_(epl_test_result_, __LINE__).status();        \
  decl = std::move(EPL_RESULT_CONCAT_(epl_test_result_, __LINE__)).value()

#endif  // EPL_TESTS_TEST_UTIL_H_
