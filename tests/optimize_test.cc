#include <gtest/gtest.h>

#include "core/learner.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "optimize/overlap.h"
#include "optimize/simplify.h"
#include "test_util.h"
#include "transform/transform.h"
#include "transform/view.h"

namespace epl::optimize {
namespace {

using core::GestureDefinition;
using core::JointWindow;
using core::PoseWindow;
using kinect::JointId;

GestureDefinition LineGesture(const std::string& name,
                              std::vector<double> xs, double half = 50.0) {
  GestureDefinition def;
  def.name = name;
  def.joints = {JointId::kRightHand};
  for (size_t i = 0; i < xs.size(); ++i) {
    PoseWindow pose;
    JointWindow window;
    window.center = Vec3(xs[i], 150.0, -120.0);
    window.half_width = Vec3(half, half, half);
    pose.joints[JointId::kRightHand] = window;
    pose.max_gap = i == 0 ? 0 : kSecond;
    def.poses.push_back(pose);
  }
  return def;
}

TEST(OverlapTest, IdenticalGesturesOverlap) {
  GestureDefinition a = LineGesture("a", {0, 300, 600});
  GestureDefinition b = LineGesture("b", {0, 300, 600});
  OverlapReport report = CheckOverlap(a, b);
  EXPECT_TRUE(report.sequence_overlap);
  EXPECT_GT(report.severity, 0.9);
  EXPECT_EQ(report.intersecting_poses.size(), 3u);
}

TEST(OverlapTest, DisjointGesturesDoNotOverlap) {
  GestureDefinition a = LineGesture("a", {0, 300, 600});
  GestureDefinition b = LineGesture("b", {5000, 5300, 5600});
  OverlapReport report = CheckOverlap(a, b);
  EXPECT_FALSE(report.sequence_overlap);
  EXPECT_TRUE(report.intersecting_poses.empty());
  EXPECT_DOUBLE_EQ(report.severity, 0.0);
}

TEST(OverlapTest, ReversedOrderDoesNotSequenceOverlap) {
  // Same regions, opposite order: pose intersections exist but no monotone
  // traversal does.
  GestureDefinition a = LineGesture("a", {0, 300, 600});
  GestureDefinition b = LineGesture("b", {600, 300, 0});
  OverlapReport report = CheckOverlap(a, b);
  EXPECT_FALSE(report.sequence_overlap);
  EXPECT_FALSE(report.intersecting_poses.empty());
}

TEST(OverlapTest, SubPathOverlapsWiderGesture) {
  // A short prefix movement overlaps a longer gesture that starts the
  // same way (the paper's overlap problem).
  GestureDefinition shorter = LineGesture("short", {0, 300});
  GestureDefinition longer = LineGesture("long", {0, 300, 600});
  OverlapReport report = CheckOverlap(shorter, longer);
  EXPECT_TRUE(report.sequence_overlap);
  // The reverse direction does not hold: the long gesture leaves the
  // short one's windows.
  EXPECT_FALSE(CheckOverlap(longer, shorter).sequence_overlap);
}

TEST(OverlapTest, WideningCreatesOverlap) {
  // Fig. 2's two vocabulary gestures: disjoint at +-50 mm windows.
  GestureDefinition a = LineGesture("a", {0, 300, 600}, 50);
  GestureDefinition b = LineGesture("b", {150, 450, 750}, 50);
  EXPECT_FALSE(CheckOverlap(a, b).sequence_overlap);
  // Scaling the windows too much introduces the overlapping problem
  // (paper Sec. 3.3.2).
  GestureDefinition a_wide = LineGesture("a", {0, 300, 600}, 200);
  GestureDefinition b_wide = LineGesture("b", {150, 450, 750}, 200);
  EXPECT_TRUE(CheckOverlap(a_wide, b_wide).sequence_overlap);
}

TEST(OverlapTest, ValidateVocabularyReportsPairs) {
  std::vector<GestureDefinition> vocabulary = {
      LineGesture("a", {0, 300, 600}),
      LineGesture("b", {10, 310, 590}),  // near-duplicate of a
      LineGesture("c", {5000, 5500, 6000}),
  };
  std::vector<OverlapReport> reports = ValidateVocabulary(vocabulary);
  ASSERT_EQ(reports.size(), 2u);  // a-in-b and b-in-a
  EXPECT_EQ(reports[0].gesture_a, "a");
  EXPECT_EQ(reports[0].gesture_b, "b");
}

TEST(SimplifyTest, MergesHeavilyOverlappingAdjacentPoses) {
  // Poses 1 and 2 nearly coincide.
  GestureDefinition def = LineGesture("g", {0, 300, 310, 600});
  SimplifyConfig config;
  SimplifyStats stats = MergeAdjacentPoses(&def, config);
  EXPECT_EQ(stats.poses_before, 4);
  EXPECT_EQ(stats.poses_after, 3);
  ASSERT_EQ(def.poses.size(), 3u);
  // The merged pose covers both originals.
  const JointWindow& merged = def.poses[1].joints.at(JointId::kRightHand);
  EXPECT_TRUE(merged.Contains(Vec3(300, 150, -120)));
  EXPECT_TRUE(merged.Contains(Vec3(310, 150, -120)));
  // Budgets are preserved: the pose after the merge absorbed the gap.
  EXPECT_EQ(def.poses[2].max_gap, 2 * kSecond);
  EPL_EXPECT_OK(def.Validate());
}

TEST(SimplifyTest, DistinctPosesAreKept) {
  GestureDefinition def = LineGesture("g", {0, 300, 600});
  SimplifyStats stats = MergeAdjacentPoses(&def);
  EXPECT_EQ(stats.poses_after, 3);
}

TEST(SimplifyTest, NeverDropsBelowMinPoses) {
  GestureDefinition def = LineGesture("g", {0, 5, 10, 15});
  SimplifyConfig config;
  config.min_poses = 2;
  MergeAdjacentPoses(&def, config);
  EXPECT_GE(def.poses.size(), 2u);
}

TEST(AxisEliminationTest, DropsConstantAxes) {
  // The gesture moves only along x; y and z centers are constant.
  GestureDefinition def = LineGesture("g", {0, 300, 600});
  AxisEliminationConfig config;
  config.min_center_span_mm = 120.0;
  config.min_axes_per_joint = 1;
  SimplifyStats stats = EliminateIrrelevantAxes(&def, config);
  EXPECT_EQ(stats.axes_deactivated, 2);
  for (const PoseWindow& pose : def.poses) {
    const JointWindow& window = pose.joints.at(JointId::kRightHand);
    EXPECT_TRUE(window.active[0]);   // x spans 600
    EXPECT_FALSE(window.active[1]);  // y constant
    EXPECT_FALSE(window.active[2]);  // z constant
  }
  EPL_EXPECT_OK(def.Validate());
}

TEST(AxisEliminationTest, KeepsAtLeastConfiguredAxes) {
  // Nothing moves: even then, min_axes_per_joint survive.
  GestureDefinition def = LineGesture("g", {0, 10, 20});
  AxisEliminationConfig config;
  config.min_center_span_mm = 1000.0;
  config.min_axes_per_joint = 2;
  EliminateIrrelevantAxes(&def, config);
  EXPECT_EQ(def.poses[0].joints.at(JointId::kRightHand).NumActiveAxes(), 2);
}

TEST(AxisEliminationTest, QueryOmitsInactiveAxes) {
  GestureDefinition def = LineGesture("g", {0, 300, 600});
  EliminateIrrelevantAxes(&def);
  EPL_ASSERT_OK_AND_ASSIGN(std::string text, core::GenerateQueryText(def));
  EXPECT_NE(text.find("rHand_x"), std::string::npos);
  EXPECT_EQ(text.find("rHand_y"), std::string::npos);
  EXPECT_EQ(text.find("rHand_z"), std::string::npos);
}

TEST(AxisEliminationTest, OptimizedGestureStillDetects) {
  // End-to-end: learn swipe_right, simplify + eliminate axes, verify the
  // optimized pattern still detects the gesture (E7's accuracy side).
  kinect::GestureShape shape = kinect::GestureShapes::SwipeRight();
  core::GestureLearner learner(shape.name, shape.InvolvedJoints());
  kinect::UserProfile trainer;
  for (int i = 0; i < 4; ++i) {
    std::vector<kinect::SkeletonFrame> frames = kinect::SynthesizeSample(
        trainer, shape, 600 + static_cast<uint64_t>(i));
    for (kinect::SkeletonFrame& frame : frames) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    EPL_ASSERT_OK(learner.AddSample(frames));
  }
  EPL_ASSERT_OK_AND_ASSIGN(core::GestureDefinition def, learner.Learn());
  MergeAdjacentPoses(&def);
  EliminateIrrelevantAxes(&def);
  ASSERT_GE(def.poses.size(), 2u);

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));
  int detections = 0;
  EPL_ASSERT_OK(core::DeployGesture(
                    &engine, def,
                    [&detections](const cep::Detection&) { ++detections; })
                    .status());
  kinect::UserProfile user;
  user.height_mm = 1500;
  kinect::SessionBuilder builder(user, 77);
  builder.Idle(0.5).Perform(shape, 0.4).Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, builder.frames()));
  EXPECT_GE(detections, 1);
}

}  // namespace
}  // namespace epl::optimize
