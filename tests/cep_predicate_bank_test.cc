#include "cep/predicate_bank.h"

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "cep/pattern.h"
#include "common/rng.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using stream::Schema;

Schema XyzSchema() {
  return Schema(std::vector<std::string>{"x", "y", "z"});
}

ExprPtr Bound(ExprPtr expr) {
  Status status = expr->Bind(XyzSchema());
  EPL_CHECK(status.ok()) << status;
  return expr;
}

std::map<int, PredicateBank::Interval> DecomposeOrDie(const Expr& expr) {
  std::map<int, PredicateBank::Interval> intervals;
  EXPECT_TRUE(PredicateBank::Decompose(expr, &intervals))
      << expr.ToString();
  return intervals;
}

CompiledPattern CompilePose(ExprPtr predicate) {
  PatternExprPtr pose = PatternExpr::Pose("s", std::move(predicate));
  Result<CompiledPattern> compiled =
      CompiledPattern::Compile(*pose, XyzSchema());
  EPL_CHECK(compiled.ok()) << compiled.status();
  return std::move(compiled).value();
}

Event At(double x, double y = 0.0, double z = 0.0) {
  return Event(0, {x, y, z});
}

TEST(DecomposeTest, RangePredicateBecomesOneInterval) {
  ExprPtr expr = Bound(Expr::RangePredicate("x", 100, 50));
  auto intervals = DecomposeOrDie(*expr);
  ASSERT_EQ(intervals.size(), 1u);
  const PredicateBank::Interval& interval = intervals.at(0);
  // Bounds are refined to the exact inclusive floating-point boundary,
  // within an ulp of the symbolic endpoints.
  EXPECT_DOUBLE_EQ(interval.lo, 50.0);
  EXPECT_DOUBLE_EQ(interval.hi, 150.0);
  EXPECT_GT(interval.lo, 50.0);
  EXPECT_LT(interval.hi, 150.0);
}

TEST(DecomposeTest, NegativeCenterRendersAsAddition) {
  // RangePredicate folds a negative center into "x + 120".
  ExprPtr expr = Bound(Expr::RangePredicate("x", -120, 50));
  auto intervals = DecomposeOrDie(*expr);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals.at(0).lo, -170.0);
  EXPECT_DOUBLE_EQ(intervals.at(0).hi, -70.0);
}

TEST(DecomposeTest, ConjunctionCoversAllFields) {
  std::vector<ExprPtr> terms;
  terms.push_back(Expr::RangePredicate("x", 10, 1));
  terms.push_back(Expr::RangePredicate("y", 20, 2));
  terms.push_back(Expr::RangePredicate("z", 30, 3));
  ExprPtr expr = Bound(Expr::And(std::move(terms)));
  auto intervals = DecomposeOrDie(*expr);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_DOUBLE_EQ(intervals.at(1).lo, 18.0);
  EXPECT_DOUBLE_EQ(intervals.at(2).hi, 33.0);
}

TEST(DecomposeTest, PlainComparisonsAndEquality) {
  auto lt = DecomposeOrDie(*Bound(
      Expr::Binary(BinaryOp::kLt, Expr::Field("x"), Expr::Constant(5))));
  // x < 5 refines to the inclusive bound just below 5.
  EXPECT_DOUBLE_EQ(lt.at(0).hi, 5.0);
  EXPECT_LT(lt.at(0).hi, 5.0);

  // Constant on the left mirrors the comparison: 5 < x is a lower bound.
  auto gt = DecomposeOrDie(*Bound(
      Expr::Binary(BinaryOp::kLt, Expr::Constant(5), Expr::Field("x"))));
  EXPECT_DOUBLE_EQ(gt.at(0).lo, 5.0);

  auto eq = DecomposeOrDie(*Bound(
      Expr::Binary(BinaryOp::kEq, Expr::Field("x"), Expr::Constant(7))));
  EXPECT_DOUBLE_EQ(eq.at(0).lo, 7.0);
  EXPECT_DOUBLE_EQ(eq.at(0).hi, 7.0);
}

TEST(DecomposeTest, IntersectsBoundsOnOneField) {
  ExprPtr expr = Bound(Expr::Binary(
      BinaryOp::kAnd, Expr::RangePredicate("x", 100, 50),
      Expr::RangePredicate("x", 120, 50)));
  auto intervals = DecomposeOrDie(*expr);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals.at(0).lo, 70.0);
  EXPECT_DOUBLE_EQ(intervals.at(0).hi, 150.0);
}

TEST(DecomposeTest, RejectsNonConjunctiveShapes) {
  std::map<int, PredicateBank::Interval> intervals;
  // Disjunction.
  EXPECT_FALSE(PredicateBank::Decompose(
      *Bound(Expr::Binary(BinaryOp::kOr, Expr::RangePredicate("x", 0, 1),
                          Expr::RangePredicate("x", 10, 1))),
      &intervals));
  // Two fields in one atom.
  EXPECT_FALSE(PredicateBank::Decompose(
      *Bound(Expr::Binary(
          BinaryOp::kLt,
          Expr::Binary(BinaryOp::kAdd, Expr::Field("x"), Expr::Field("y")),
          Expr::Constant(3))),
      &intervals));
  // abs(x) > c is a disjunction of rays.
  EXPECT_FALSE(PredicateBank::Decompose(
      *Bound(Expr::Binary(BinaryOp::kGt, Expr::Abs(Expr::Field("x")),
                          Expr::Constant(2))),
      &intervals));
  // Function calls other than abs.
  std::vector<ExprPtr> args;
  args.push_back(Expr::Field("x"));
  args.push_back(Expr::Field("y"));
  args.push_back(Expr::Field("z"));
  EXPECT_FALSE(PredicateBank::Decompose(
      *Bound(Expr::Binary(BinaryOp::kLt,
                          Expr::Call("hypot3", std::move(args)),
                          Expr::Constant(10))),
      &intervals));
}

TEST(PredicateBankTest, BoundaryStrictnessIsExact) {
  std::vector<CompiledPattern> patterns;
  patterns.push_back(CompilePose(
      Expr::Binary(BinaryOp::kLt, Expr::Field("x"), Expr::Constant(5))));
  patterns.push_back(CompilePose(
      Expr::Binary(BinaryOp::kLe, Expr::Field("x"), Expr::Constant(5))));
  patterns.push_back(CompilePose(
      Expr::Binary(BinaryOp::kGt, Expr::Field("x"), Expr::Constant(5))));
  patterns.push_back(CompilePose(
      Expr::Binary(BinaryOp::kGe, Expr::Field("x"), Expr::Constant(5))));

  PredicateBank bank;
  std::vector<int> ids;
  for (const CompiledPattern& pattern : patterns) {
    ids.push_back(bank.RegisterPattern(pattern)[0]);
  }
  bank.Build();
  EXPECT_EQ(bank.num_fallback(), 0);

  bank.Evaluate(At(5.0));  // exactly on the shared endpoint
  EXPECT_FALSE(bank.value(ids[0]));  // x < 5
  EXPECT_TRUE(bank.value(ids[1]));   // x <= 5
  EXPECT_FALSE(bank.value(ids[2]));  // x > 5
  EXPECT_TRUE(bank.value(ids[3]));   // x >= 5

  bank.Evaluate(At(4.999));
  EXPECT_TRUE(bank.value(ids[0]));
  EXPECT_TRUE(bank.value(ids[1]));
  EXPECT_FALSE(bank.value(ids[2]));
  EXPECT_FALSE(bank.value(ids[3]));
}

TEST(PredicateBankTest, DeduplicatesAcrossPatterns) {
  CompiledPattern a = CompilePose(Expr::RangePredicate("x", 100, 50));
  CompiledPattern b = CompilePose(Expr::RangePredicate("x", 100, 50));
  CompiledPattern c = CompilePose(Expr::RangePredicate("x", 200, 50));
  PredicateBank bank;
  int id_a = bank.RegisterPattern(a)[0];
  int id_b = bank.RegisterPattern(b)[0];
  int id_c = bank.RegisterPattern(c)[0];
  EXPECT_EQ(id_a, id_b);
  EXPECT_NE(id_a, id_c);
  EXPECT_EQ(bank.num_predicates(), 2);
  EXPECT_EQ(bank.registered_states(), 3u);
}

TEST(PredicateBankTest, DedupKeyIsExactBeyondPrintPrecision) {
  // Centers differing below Expr::ToString's 6-decimal print precision
  // must NOT merge: the dedup key is an exact rendering.
  CompiledPattern a = CompilePose(Expr::RangePredicate("x", 100.0, 50));
  CompiledPattern b =
      CompilePose(Expr::RangePredicate("x", 100.0 + 1e-9, 50));
  PredicateBank bank;
  int id_a = bank.RegisterPattern(a)[0];
  int id_b = bank.RegisterPattern(b)[0];
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(bank.num_predicates(), 2);
}

TEST(PredicateBankTest, FallbackPredicatesUseTheirProgram) {
  CompiledPattern fancy = CompilePose(Expr::Binary(
      BinaryOp::kOr, Expr::RangePredicate("x", -100, 10),
      Expr::RangePredicate("x", 100, 10)));
  CompiledPattern plain = CompilePose(Expr::RangePredicate("y", 0, 1));
  PredicateBank bank;
  int fancy_id = bank.RegisterPattern(fancy)[0];
  int plain_id = bank.RegisterPattern(plain)[0];
  bank.Build();
  EXPECT_EQ(bank.num_decomposable(), 1);
  EXPECT_EQ(bank.num_fallback(), 1);

  bank.Evaluate(At(-105.0, 0.5));
  EXPECT_TRUE(bank.value(fancy_id));
  EXPECT_TRUE(bank.value(plain_id));
  bank.Evaluate(At(0.0, 5.0));
  EXPECT_FALSE(bank.value(fancy_id));
  EXPECT_FALSE(bank.value(plain_id));
  EXPECT_EQ(bank.stats().events, 2u);
  EXPECT_EQ(bank.stats().program_evaluations, 2u);  // fallback only
}

TEST(PredicateBankTest, EmptyIntersectionNeverMatches) {
  CompiledPattern empty = CompilePose(Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kLt, Expr::Field("x"), Expr::Constant(1)),
      Expr::Binary(BinaryOp::kGt, Expr::Field("x"), Expr::Constant(2))));
  PredicateBank bank;
  int id = bank.RegisterPattern(empty)[0];
  bank.Build();
  EXPECT_EQ(bank.num_fallback(), 0);
  for (double v : {0.0, 1.0, 1.5, 2.0, 3.0}) {
    bank.Evaluate(At(v));
    EXPECT_FALSE(bank.value(id)) << v;
  }
}

TEST(PredicateBankTest, NanMatchesNothingConstrained) {
  CompiledPattern on_x = CompilePose(Expr::RangePredicate("x", 0, 1e9));
  CompiledPattern on_y = CompilePose(Expr::RangePredicate("y", 0, 10));
  PredicateBank bank;
  int x_id = bank.RegisterPattern(on_x)[0];
  int y_id = bank.RegisterPattern(on_y)[0];
  bank.Build();
  bank.Evaluate(At(std::numeric_limits<double>::quiet_NaN(), 0.0));
  EXPECT_FALSE(bank.value(x_id));
  EXPECT_TRUE(bank.value(y_id));
}

TEST(PredicateBankTest, CrossEventRegionMemoSkipsSearches) {
  CompiledPattern low = CompilePose(Expr::RangePredicate("x", -50, 25));
  CompiledPattern high = CompilePose(Expr::RangePredicate("x", 50, 25));
  PredicateBank bank;
  int low_id = bank.RegisterPattern(low)[0];
  int high_id = bank.RegisterPattern(high)[0];
  bank.Build();

  // A 30 Hz-style dribble inside one elementary region: one search, then
  // memo hits, all with the right truth.
  for (double v : {-40.0, -41.5, -39.2, -44.0}) {
    bank.Evaluate(At(v));
    EXPECT_TRUE(bank.value(low_id)) << v;
    EXPECT_FALSE(bank.value(high_id)) << v;
  }
  EXPECT_EQ(bank.stats().region_searches, 1u);
  EXPECT_EQ(bank.stats().region_memo_hits, 3u);

  // Leaving the region invalidates the memo (fresh search), and exact
  // endpoint stabs land in singleton regions the open-region memo must
  // not swallow.
  bank.Evaluate(At(60.0));
  EXPECT_FALSE(bank.value(low_id));
  EXPECT_TRUE(bank.value(high_id));
  EXPECT_EQ(bank.stats().region_searches, 2u);
  bank.Evaluate(At(60.0));
  EXPECT_EQ(bank.stats().region_memo_hits, 4u);
}

TEST(PredicateBankTest, BatchCountersSplitBroadcastVsRecomputedRows) {
  CompiledPattern low = CompilePose(Expr::RangePredicate("x", -50, 25));
  CompiledPattern high = CompilePose(Expr::RangePredicate("x", 50, 25));
  PredicateBank bank;
  int low_id = bank.RegisterPattern(low)[0];
  int high_id = bank.RegisterPattern(high)[0];
  bank.Build();

  // One window: 3 same-region events (1 search + 2 broadcast rows), a
  // region change (search), then 2 more broadcast rows in the new region.
  std::vector<Event> window = {At(-40.0), At(-41.5), At(-39.2),
                               At(60.0),  At(61.0),  At(58.5)};
  bank.EvaluateBatch(window.data(), window.size());
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_TRUE(bank.batch_value(b, low_id)) << b;
    EXPECT_FALSE(bank.batch_value(b, high_id)) << b;
  }
  for (size_t b = 3; b < 6; ++b) {
    EXPECT_FALSE(bank.batch_value(b, low_id)) << b;
    EXPECT_TRUE(bank.batch_value(b, high_id)) << b;
  }
  EXPECT_EQ(bank.stats().batch_recomputed_rows, 2u);
  EXPECT_EQ(bank.stats().batch_broadcast_rows, 4u);
  // The batch split refines the same totals the per-event memo reports.
  EXPECT_EQ(bank.stats().region_searches, 2u);
  EXPECT_EQ(bank.stats().region_memo_hits, 4u);

  // The memo survives across windows: a follow-up window starting in the
  // same region serves every row from the broadcast word.
  std::vector<Event> next = {At(59.0), At(60.5)};
  bank.EvaluateBatch(next.data(), next.size());
  EXPECT_EQ(bank.stats().batch_recomputed_rows, 2u);
  EXPECT_EQ(bank.stats().batch_broadcast_rows, 6u);
}

TEST(PredicateBankTest, BatchNanRowsCountInNeitherBatchCounter) {
  CompiledPattern low = CompilePose(Expr::RangePredicate("x", -50, 25));
  PredicateBank bank;
  int low_id = bank.RegisterPattern(low)[0];
  bank.Build();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  // NaN rows clear constrained bits without touching the memo: the run
  // around them stays broadcastable.
  std::vector<Event> window = {At(-40.0), At(nan), At(-41.0)};
  bank.EvaluateBatch(window.data(), window.size());
  EXPECT_TRUE(bank.batch_value(0, low_id));
  EXPECT_FALSE(bank.batch_value(1, low_id));
  EXPECT_TRUE(bank.batch_value(2, low_id));
  EXPECT_EQ(bank.stats().batch_recomputed_rows, 1u);
  EXPECT_EQ(bank.stats().batch_broadcast_rows, 1u);
}

// Property: a field with hundreds of regions (many checkpoint strides)
// still answers every predicate exactly, under both slow region-to-region
// walks (memo-friendly) and random jumps (checkpoint + delta replay).
TEST(PredicateBankTest, DeltaEncodingAgreesAcrossManyRegions) {
  Rng rng(4242);
  std::vector<CompiledPattern> patterns;
  std::vector<double> endpoints;
  for (int p = 0; p < 150; ++p) {
    double center = rng.Uniform(-100, 100);
    double width = rng.Uniform(0.1, 30);
    endpoints.push_back(center - width);
    endpoints.push_back(center + width);
    patterns.push_back(CompilePose(Expr::RangePredicate("x", center, width)));
  }
  PredicateBank bank;
  std::vector<int> ids;
  for (const CompiledPattern& pattern : patterns) {
    ids.push_back(bank.RegisterPattern(pattern)[0]);
  }
  bank.Build();
  ASSERT_EQ(bank.num_fallback(), 0);

  std::vector<double> probes;
  for (double v = -120.0; v <= 120.0; v += 0.37) {
    probes.push_back(v);  // slow walk
  }
  for (int i = 0; i < 300; ++i) {
    probes.push_back(rng.Bernoulli(0.4)
                         ? endpoints[rng.UniformInt(
                               0, static_cast<int64_t>(endpoints.size()) - 1)]
                         : rng.Uniform(-130, 130));
  }
  for (double v : probes) {
    bank.Evaluate(At(v));
    for (size_t p = 0; p < patterns.size(); ++p) {
      ASSERT_EQ(bank.value(ids[p]),
                patterns[p].predicate(0).EvalBool(At(v)))
          << patterns[p].predicate_expr(0).ToString() << " at " << v;
    }
  }
  EXPECT_GT(bank.stats().region_memo_hits, 0u);
  EXPECT_GT(bank.stats().region_searches, 0u);
}

// Property: for random range-conjunction predicates the interval index
// agrees with ExprProgram evaluation everywhere, including exactly on
// interval endpoints.
class PredicateBankProperty : public ::testing::TestWithParam<int> {};

TEST_P(PredicateBankProperty, AgreesWithProgramEvaluation) {
  Rng rng(17 + static_cast<uint64_t>(GetParam()) * 1009);
  const char* kFields[] = {"x", "y", "z"};

  std::vector<CompiledPattern> patterns;
  std::vector<double> endpoints;
  for (int p = 0; p < 40; ++p) {
    std::vector<ExprPtr> terms;
    int num_terms = static_cast<int>(rng.UniformInt(1, 3));
    for (int t = 0; t < num_terms; ++t) {
      std::string field = kFields[rng.UniformInt(0, 2)];
      double center = rng.Uniform(-100, 100);
      double width = rng.Uniform(0.5, 50);
      endpoints.push_back(center - width);
      endpoints.push_back(center + width);
      terms.push_back(Expr::RangePredicate(field, center, width));
    }
    patterns.push_back(CompilePose(Expr::And(std::move(terms))));
  }

  PredicateBank bank;
  std::vector<int> ids;
  for (const CompiledPattern& pattern : patterns) {
    ids.push_back(bank.RegisterPattern(pattern)[0]);
  }
  bank.Build();
  EXPECT_EQ(bank.num_fallback(), 0);

  for (int e = 0; e < 300; ++e) {
    std::vector<double> values(3);
    for (double& v : values) {
      if (rng.Bernoulli(0.3) && !endpoints.empty()) {
        // Stab exactly on an interval endpoint.
        v = endpoints[rng.UniformInt(
            0, static_cast<int64_t>(endpoints.size()) - 1)];
      } else {
        v = rng.Uniform(-160, 160);
      }
    }
    Event event(0, values);
    bank.Evaluate(event);
    for (size_t p = 0; p < patterns.size(); ++p) {
      EXPECT_EQ(bank.value(ids[p]),
                patterns[p].predicate(0).EvalBool(event))
          << "pattern " << p << ": "
          << patterns[p].predicate_expr(0).ToString() << " at event "
          << event.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateBankProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace epl::cep
