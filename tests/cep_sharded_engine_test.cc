// ShardedEngine correctness: a sharded deployment must produce exactly the
// detections of the single-threaded fused deployment -- same records, same
// (event-seq, query-id) order -- for every shard count, batch size, and
// matcher mode, fed directly or through the StreamEngine/EngineRunner
// ingestion path. Plus shard bookkeeping: partitioning, rebalancing on
// skew, lifecycle errors.

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cep/composite.h"
#include "cep/multi_match_operator.h"
#include "cep/pattern.h"
#include "cep/sharded_engine.h"
#include "cep_workload_test_util.h"
#include "core/query_gen.h"
#include "kinect/sensor.h"
#include "query/compiler.h"
#include "stream/engine.h"
#include "stream/runner.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using testing::CompileDefinitions;
using testing::DetectionRecord;
using testing::MakeSpec;
using testing::Recorder;
using testing::TrainedDefinitions;
using testing::Workload;

/// Detections of the single-threaded fused operator over `events`:
/// the ground truth order (event, then query registration order).
std::vector<DetectionRecord> FusedBaseline(
    const std::vector<core::GestureDefinition>& definitions,
    const std::vector<Event>& events, MatcherOptions options) {
  MultiMatchOperator op(options);
  std::vector<DetectionRecord> records;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    op.AddQuery(MakeSpec(std::move(compiled), Recorder(&records)));
  }
  for (const Event& event : events) {
    EPL_EXPECT_OK(op.Process(event));
  }
  return records;
}

class ShardedEquivalence
    : public ::testing::TestWithParam<std::tuple<int, size_t, int>> {};

TEST_P(ShardedEquivalence, MatchesFusedDeployment) {
  const int num_shards = std::get<0>(GetParam());
  const size_t batch_size = std::get<1>(GetParam());
  const bool exhaustive = std::get<2>(GetParam()) != 0;

  MatcherOptions matcher_options;
  matcher_options.mode = exhaustive ? MatcherOptions::Mode::kExhaustive
                                    : MatcherOptions::Mode::kDominant;
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(10);
  std::vector<Event> events = Workload(7);
  std::vector<DetectionRecord> expected =
      FusedBaseline(definitions, events, matcher_options);
  ASSERT_FALSE(expected.empty());

  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.batch_size = batch_size;
  options.matcher = matcher_options;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> actual;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    sharded.AddQuery(MakeSpec(std::move(compiled), Recorder(&actual)));
  }
  EXPECT_EQ(sharded.num_queries(), definitions.size());
  EPL_ASSERT_OK(sharded.Start());
  for (const Event& event : events) {
    ASSERT_TRUE(sharded.Push(event));
  }
  EPL_ASSERT_OK(sharded.Stop());

  EXPECT_EQ(sharded.processed(), events.size());
  ASSERT_TRUE(actual == expected)
      << actual.size() << " vs " << expected.size() << " detections at "
      << num_shards << " shards";
}

INSTANTIATE_TEST_SUITE_P(
    ShardsBatchesModes, ShardedEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values<size_t>(1, 7, 64),
                       ::testing::Values(0, 1)));

// The pure placement policy behind Rebalance: one greedy weighted step.
TEST(RebalancePolicyTest, BalancedWithinSkewBudgetDoesNotMove) {
  EXPECT_EQ(PickRebalanceVictim({30, 20}, {{7, 10}}, 10), -1);
  EXPECT_EQ(PickRebalanceVictim({20, 20, 20}, {{1, 20}}, 0), -1);
  EXPECT_EQ(PickRebalanceVictim({5}, {{1, 5}}, 0), -1);  // one shard
}

TEST(RebalancePolicyTest, PicksWeightClosestToHalfTheGap) {
  // Gap 40: moving weight 18 leaves a residual gap of 4, better than
  // weight 5 (residual 30) or weight 30 (residual 20).
  EXPECT_EQ(PickRebalanceVictim({60, 20}, {{1, 5}, {2, 18}, {3, 30}}, 10), 2);
}

TEST(RebalancePolicyTest, RefusesMovesThatCannotShrinkTheGap) {
  // Gap 12 exceeds the budget, but moving the only candidate (weight 12)
  // would just mirror the imbalance; the policy keeps the status quo.
  EXPECT_EQ(PickRebalanceVictim({24, 12}, {{5, 12}}, 10), -1);
  // A zero-weight candidate cannot shrink the gap either.
  EXPECT_EQ(PickRebalanceVictim({10, 0}, {{1, 0}}, 5), -1);
}

TEST(RebalancePolicyTest, TieBreaksTowardTheYoungestQuery) {
  EXPECT_EQ(PickRebalanceVictim({40, 0}, {{2, 10}, {9, 10}, {4, 10}}, 5), 9);
}

/// A synthetic `poses`-pose chain gesture: its placement weight
/// (QueryCostWeight: states + distinct bank predicates) scales with the
/// pose count, unlike the uniform TrainedDefinitions.
core::GestureDefinition PosesDefinition(const std::string& name, int poses) {
  core::GestureDefinition definition;
  definition.name = name;
  definition.source_stream = "kinect";
  definition.joints = {kinect::JointId::kRightHand};
  for (int i = 0; i < poses; ++i) {
    core::PoseWindow pose;
    core::JointWindow window;
    window.center = Vec3(640.0 * i / std::max(1, poses - 1), 150.0, -150.0);
    window.half_width = Vec3(60, 60, 60);
    pose.joints[kinect::JointId::kRightHand] = window;
    pose.max_gap = i == 0 ? 0 : kSecond;
    definition.poses.push_back(pose);
  }
  return definition;
}

TEST(ShardedEngineTest, PlacementBalancesWeightNotCount) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine sharded(options);
  std::vector<query::CompiledQuery> compiled =
      CompileDefinitions({PosesDefinition("heavy", 8),
                          PosesDefinition("light_a", 2),
                          PosesDefinition("light_b", 2)});
  EXPECT_EQ(QueryCostWeight(compiled[0].pattern), 16u);
  EXPECT_EQ(QueryCostWeight(compiled[1].pattern), 4u);
  std::vector<int> ids;
  for (query::CompiledQuery& query : compiled) {
    ids.push_back(sharded.AddQuery(MakeSpec(std::move(query), nullptr)));
  }
  // Count-only balancing would pair the heavy query with a light one;
  // weighted balancing stacks both light queries opposite it.
  EXPECT_EQ(sharded.shard_of(ids[0]), 0);
  EXPECT_EQ(sharded.shard_of(ids[1]), 1);
  EXPECT_EQ(sharded.shard_of(ids[2]), 1);
  EXPECT_EQ(sharded.shard_weights(), (std::vector<uint64_t>{16, 8}));
  EXPECT_EQ(sharded.shard_query_counts(), (std::vector<size_t>{1, 2}));
}

TEST(ShardedEngineTest, RebalanceNeverResetsQueryStats) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(4);
  std::vector<Event> events = Workload(3);

  ShardedEngineOptions options;
  options.num_shards = 2;
  options.batch_size = 4;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> records;
  std::vector<int> ids;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    ids.push_back(sharded.AddQuery(MakeSpec(std::move(compiled),
                                            Recorder(&records))));
  }
  EPL_ASSERT_OK(sharded.Start());
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Flush());

  std::vector<ShardedEngine::QueryStatsSnapshot> before =
      sharded.QueryStats();
  ASSERT_EQ(before.size(), 4u);
  for (const auto& snapshot : before) {
    EXPECT_EQ(snapshot.stats.events, half) << "query " << snapshot.query_id;
  }

  // Empty shard 1: the rebalancer moves a survivor, whose counters must
  // travel with its matcher instead of restarting from zero.
  EPL_ASSERT_OK(sharded.RemoveQuery(ids[1]));
  EPL_ASSERT_OK(sharded.RemoveQuery(ids[3]));
  EXPECT_GT(sharded.rebalanced_queries(), 0u);
  for (size_t i = half; i < events.size(); ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Stop());

  std::vector<ShardedEngine::QueryStatsSnapshot> after = sharded.QueryStats();
  ASSERT_EQ(after.size(), 2u);
  for (const auto& snapshot : after) {
    // Every event of the stream is accounted for despite the mid-stream
    // shard move ...
    EXPECT_EQ(snapshot.stats.events, events.size())
        << "query " << snapshot.query_id;
    // ... and so is every match this query ever produced.
    const std::string& name =
        definitions[static_cast<size_t>(snapshot.query_id)].name;
    size_t delivered = 0;
    for (const DetectionRecord& record : records) {
      delivered += record.name == name ? 1 : 0;
    }
    EXPECT_EQ(snapshot.stats.matches, delivered)
        << "query " << snapshot.query_id;
    EXPECT_GT(snapshot.stats.matches, 0u) << "query " << snapshot.query_id;
  }
}

TEST(ShardedEngineTest, QueriesSpreadAcrossShards) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine sharded(options);
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(8);
  std::vector<int> ids;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    ids.push_back(sharded.AddQuery(MakeSpec(std::move(compiled), nullptr)));
  }
  EXPECT_EQ(sharded.shard_query_counts(), (std::vector<size_t>{2, 2, 2, 2}));
  for (int id : ids) {
    EXPECT_GE(sharded.shard_of(id), 0);
  }
  EXPECT_EQ(sharded.shard_of(99), -1);
}

TEST(ShardedEngineTest, RemovalSkewTriggersRebalance) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine sharded(options);
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(8);
  std::vector<int> ids;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    ids.push_back(sharded.AddQuery(MakeSpec(std::move(compiled), nullptr)));
  }
  // Ids 0..3 land on shards 0..3 (least-loaded, lowest index first), then
  // 4..7 wrap around; shard 0 hosts {0, 4}.
  ASSERT_EQ(sharded.shard_of(ids[0]), 0);
  ASSERT_EQ(sharded.shard_of(ids[4]), 0);

  EPL_ASSERT_OK(sharded.RemoveQuery(ids[0]));
  // Skew 1 is tolerated.
  EXPECT_EQ(sharded.rebalanced_queries(), 0u);

  EPL_ASSERT_OK(sharded.RemoveQuery(ids[4]));
  // Shard 0 is empty, the rest host 2 each: one query moves over.
  EXPECT_EQ(sharded.rebalanced_queries(), 1u);
  std::vector<size_t> counts = sharded.shard_query_counts();
  EXPECT_EQ(counts, (std::vector<size_t>{1, 1, 2, 2}));

  EXPECT_EQ(sharded.RemoveQuery(ids[0]).code(), StatusCode::kNotFound);
}

TEST(ShardedEngineTest, ShardedDeploymentViaEngineRunner) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(6);
  std::vector<Event> events = Workload(13);
  std::vector<DetectionRecord> expected =
      FusedBaseline(definitions, events, MatcherOptions());
  ASSERT_FALSE(expected.empty());

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  std::vector<DetectionRecord> actual;
  ShardedEngineOptions options;
  options.num_shards = 3;
  options.batch_size = 8;
  EPL_ASSERT_OK_AND_ASSIGN(
      query::ShardedDeployment deployment,
      core::DeployGesturesSharded(&engine, definitions, Recorder(&actual),
                                  core::QueryGenConfig(), options));
  EXPECT_EQ(engine.deployment_count(), 1u);
  EXPECT_TRUE(deployment.engine->running());

  stream::EngineRunner runner(&engine);
  EPL_ASSERT_OK(runner.Start());
  for (const Event& event : events) {
    ASSERT_TRUE(runner.Enqueue("kinect", event));
  }
  EPL_ASSERT_OK(runner.Stop());
  EXPECT_EQ(runner.processed(), events.size());

  EPL_ASSERT_OK(deployment.engine->Flush());
  EXPECT_TRUE(actual == expected)
      << actual.size() << " vs " << expected.size() << " detections";

  // Undeploy stops the shard workers.
  EPL_ASSERT_OK(engine.Undeploy(deployment.id));
  EXPECT_EQ(engine.deployment_count(), 0u);
}

TEST(ShardedEngineTest, AddShardedGestureJoinsLiveDeployment) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(4);
  std::vector<Event> events = Workload(21);

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  std::vector<DetectionRecord> records;
  EPL_ASSERT_OK_AND_ASSIGN(
      query::ShardedDeployment deployment,
      core::DeployGesturesSharded(
          &engine, {definitions[0], definitions[1]}, Recorder(&records)));

  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    EPL_ASSERT_OK(engine.Push("kinect", events[i]));
  }
  EPL_ASSERT_OK_AND_ASSIGN(
      int added, core::AddShardedGesture(&engine, deployment, definitions[2],
                                         Recorder(&records)));
  EXPECT_EQ(deployment.engine->num_queries(), 3u);
  for (size_t i = half; i < events.size(); ++i) {
    EPL_ASSERT_OK(engine.Push("kinect", events[i]));
  }
  EPL_ASSERT_OK(deployment.engine->Flush());
  EXPECT_FALSE(records.empty());
  EPL_ASSERT_OK(deployment.engine->RemoveQuery(added));
  EXPECT_EQ(deployment.engine->num_queries(), 2u);

  // A gesture reading another stream is rejected.
  core::GestureDefinition other = definitions[3];
  other.source_stream = "other";
  Result<int> bad =
      core::AddShardedGesture(&engine, deployment, other, nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedEngineTest, CrossThreadExchangeWhileStreaming) {
  // An application thread exchanges queries while a producer thread
  // streams: the control mutex must serialize them (timing-dependent
  // interleaving, so this asserts invariants, not exact match sets; run
  // under ASan/UBSan in CI). One query lives through the whole stream and
  // must keep detecting.
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(6);
  std::vector<Event> events = Workload(31);

  ShardedEngineOptions options;
  options.num_shards = 2;
  options.batch_size = 4;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> survivor_records;
  std::vector<query::CompiledQuery> compiled =
      CompileDefinitions(definitions);
  int survivor_id =
      sharded.AddQuery(MakeSpec(std::move(compiled[0]),
                                Recorder(&survivor_records)));
  EPL_ASSERT_OK(sharded.Start());

  std::thread producer([&sharded, &events] {
    for (int round = 0; round < 3; ++round) {
      for (const Event& event : events) {
        ASSERT_TRUE(sharded.Push(event));
      }
    }
  });
  // Churn the remaining five definitions from this thread.
  for (int round = 0; round < 10; ++round) {
    std::vector<int> ids;
    for (size_t i = 1; i < definitions.size(); ++i) {
      std::vector<query::CompiledQuery> one =
          CompileDefinitions({definitions[i]});
      ids.push_back(sharded.AddQuery(MakeSpec(std::move(one[0]), nullptr)));
    }
    for (int id : ids) {
      EPL_EXPECT_OK(sharded.RemoveQuery(id));
    }
  }
  producer.join();
  EPL_ASSERT_OK(sharded.Stop());

  EXPECT_EQ(sharded.num_queries(), 1u);
  EXPECT_EQ(sharded.shard_of(survivor_id) >= 0, true);
  // The survivor detected throughout (3 workload rounds of swipes).
  EXPECT_GT(survivor_records.size(), 0u);
}

TEST(MeasuredWeightTest, FallsBackToStaticWeightWithoutEvents) {
  MatcherStats cold;
  EXPECT_EQ(MeasuredQueryCostWeight(cold, 16), 16u);
  // Never returns 0, even on a degenerate static weight.
  EXPECT_EQ(MeasuredQueryCostWeight(cold, 0), 1u);
}

TEST(MeasuredWeightTest, ScalesWithObservedPerEventReads) {
  // A hot query (many predicate reads per event) outweighs a statically
  // heavy query the stream never wakes up (one seed read per event).
  MatcherStats hot;
  hot.events = 100;
  hot.predicate_cache_hits = 380;  // ~3.8 reads/event
  MatcherStats cold;
  cold.events = 100;
  cold.predicate_cache_hits = 100;  // seed read only
  const uint64_t hot_weight = MeasuredQueryCostWeight(hot, 6);
  const uint64_t cold_weight = MeasuredQueryCostWeight(cold, 16);
  EXPECT_EQ(hot_weight, 8u);   // ceil(2 * 380 / 100)
  EXPECT_EQ(cold_weight, 2u);  // measured activity overrides static 16
  EXPECT_GT(hot_weight, cold_weight);
  // Direct interpretations count the same as bank-served reads.
  MatcherStats mixed = cold;
  mixed.predicate_evaluations = 280;
  EXPECT_EQ(MeasuredQueryCostWeight(mixed, 16), 8u);
}

/// An n-state chain over field "x": every predicate is an interval around
/// `center` of half-width `width`, with distinct centers so the static
/// weight is states + states distinct predicates.
MultiMatchOperator::QuerySpec ChainSpecX(const std::string& name, int states,
                                         double center, double width,
                                         DetectionCallback callback) {
  static const stream::Schema* schema =
      new stream::Schema(std::vector<std::string>{"x"});
  std::vector<PatternExprPtr> poses;
  for (int s = 0; s < states; ++s) {
    poses.push_back(PatternExpr::Pose(
        "s", Expr::RangePredicate("x", center + 0.001 * s, width)));
  }
  Result<CompiledPattern> compiled = CompiledPattern::Compile(
      *PatternExpr::Sequence(std::move(poses), std::nullopt,
                             WithinMode::kGap),
      *schema);
  EPL_CHECK(compiled.ok()) << compiled.status();
  MultiMatchOperator::QuerySpec spec;
  spec.output_name = name;
  spec.pattern = std::move(compiled).value();
  spec.callback = std::move(callback);
  return spec;
}

TEST(ShardedEngineTest, MeasuredHotQueriesOutweighStaticallyHeavyColdOnes) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.batch_size = 8;
  ShardedEngine sharded(options);
  // "heavy" never fires beyond its seed read (centers far from the
  // stream); the "hot" chains advance on every event.
  const int heavy_id = sharded.AddQuery(ChainSpecX("heavy", 8, 500.0, 1.0,
                                                   nullptr));
  const int hot_a_id =
      sharded.AddQuery(ChainSpecX("hot_a", 3, 1.0, 50.0, nullptr));
  const int hot_b_id =
      sharded.AddQuery(ChainSpecX("hot_b", 3, 1.0, 40.0, nullptr));
  // Static placement: heavy (weight 16) alone, the two hots (6 each)
  // together.
  ASSERT_NE(sharded.shard_of(heavy_id), sharded.shard_of(hot_a_id));
  ASSERT_EQ(sharded.shard_of(hot_a_id), sharded.shard_of(hot_b_id));

  EPL_ASSERT_OK(sharded.Start());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(sharded.Push(Event(DurationFromMillis(10.0 * i), {1.0})));
  }
  EPL_ASSERT_OK(sharded.Flush());

  // The quiesced snapshot re-derives weights from measured cost: observed
  // activity outranks the structural heuristic.
  std::vector<ShardedEngine::QueryStatsSnapshot> snapshots =
      sharded.QueryStats();
  ASSERT_EQ(snapshots.size(), 3u);
  uint64_t heavy_weight = 0;
  uint64_t hot_weight = 0;
  for (const auto& snapshot : snapshots) {
    if (snapshot.query_id == heavy_id) {
      heavy_weight = snapshot.weight;
    } else if (snapshot.query_id == hot_a_id) {
      hot_weight = snapshot.weight;
    }
    EXPECT_EQ(snapshot.stats.events, 30u) << "query " << snapshot.query_id;
    // The snapshot also carries the shard bank's evaluation counters:
    // 30 events through batch_size=8 windows must have split every
    // (field, event) row into broadcast-vs-recomputed.
    EXPECT_GT(snapshot.bank.batch_broadcast_rows +
                  snapshot.bank.batch_recomputed_rows,
              0u)
        << "query " << snapshot.query_id;
  }
  EXPECT_LT(heavy_weight, 16u);  // measured demotes the cold heavy query
  EXPECT_GT(hot_weight, heavy_weight);

  // Placement now follows measured cost: a new query lands NEXT TO the
  // statically heaviest pattern, because that shard is measurably idle
  // (impossible under static weights: 16 + 6 vs 12).
  const int late_id =
      sharded.AddQuery(ChainSpecX("late", 3, 1.0, 30.0, nullptr));
  EXPECT_EQ(sharded.shard_of(late_id), sharded.shard_of(heavy_id));
  EPL_ASSERT_OK(sharded.Stop());
}

TEST(ShardedEngineTest, LifecycleErrors) {
  ShardedEngine sharded;
  EXPECT_EQ(sharded.Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.Stop().code(), StatusCode::kFailedPrecondition);
  EPL_ASSERT_OK(sharded.Start());
  EXPECT_EQ(sharded.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(sharded.Push(Event(0, {})));
  EPL_ASSERT_OK(sharded.Flush());
  EPL_ASSERT_OK(sharded.Stop());
  EXPECT_FALSE(sharded.Push(Event(1, {})));
  EXPECT_EQ(sharded.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.Resize(2).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.AdaptShardCount().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// The pure steal policy behind the worker scheduler.

TEST(StealPolicyTest, PicksDeepestClaimableBacklog) {
  EXPECT_EQ(PickStealVictim({1, 5, 3}, {1, 1, 1}, 0), 1);
  // The deepest shard is mid-execution (busy): the next-deepest wins.
  EXPECT_EQ(PickStealVictim({1, 5, 3}, {1, 0, 1}, 0), 2);
  // Parked/retired shards (claimable 0) are invisible even with backlog.
  EXPECT_EQ(PickStealVictim({0, 7, 2}, {1, 0, 0}, 0), -1);
}

TEST(StealPolicyTest, NeverPicksItselfOrEmptyShards) {
  // A worker's own backlog never counts as a steal (it is served by the
  // own-shard-first fast path).
  EXPECT_EQ(PickStealVictim({9, 0, 0}, {1, 1, 1}, 0), -1);
  EXPECT_EQ(PickStealVictim({0, 0, 0}, {1, 1, 1}, 1), -1);
  EXPECT_EQ(PickStealVictim({4}, {1}, 0), -1);  // single-shard fleet
}

TEST(StealPolicyTest, TieBreaksTowardTheLowestShard) {
  EXPECT_EQ(PickStealVictim({0, 4, 4}, {1, 1, 1}, 0), 1);
  EXPECT_EQ(PickStealVictim({4, 2, 4}, {1, 1, 1}, 0), 2);
}

// ---------------------------------------------------------------------------
// The pure fleet-sizing policy behind AdaptShardCount.

AdaptiveShardOptions AdaptiveBounds(int min_shards, int max_shards) {
  AdaptiveShardOptions options;
  options.min_shards = min_shards;
  options.max_shards = max_shards;
  return options;  // thresholds keep their defaults: grow .75, shrink .25
}

TEST(AdaptivePolicyTest, GrowsWhenTheBottleneckShardSaturates) {
  // Shard 0 was executing 90% of the window: one more shard.
  EXPECT_EQ(RecommendShardCount(2, {900, 100}, 1000, AdaptiveBounds(1, 8)), 3);
  // Saturated but already at max_shards: hold.
  EXPECT_EQ(RecommendShardCount(8, {999, 0, 0, 0, 0, 0, 0, 0}, 1000,
                                AdaptiveBounds(1, 8)),
            8);
}

TEST(AdaptivePolicyTest, ShrinksOnlyAMostlyIdleFleet) {
  // Total utilization 0.10 fits under 0.25 x 3 survivors: drop one shard.
  EXPECT_EQ(RecommendShardCount(4, {25, 25, 25, 25}, 1000,
                                AdaptiveBounds(1, 8)),
            3);
  // Moderate load (total 0.5 > 0.25 x 1) sits in the hysteresis band:
  // neither grow (peak 0.3 < 0.75) nor shrink.
  EXPECT_EQ(RecommendShardCount(2, {300, 200}, 1000, AdaptiveBounds(1, 8)),
            2);
  // Idle but already at min_shards: hold.
  EXPECT_EQ(RecommendShardCount(1, {0}, 1000, AdaptiveBounds(1, 8)), 1);
}

TEST(AdaptivePolicyTest, DegenerateWindowsRecommendNoChange) {
  EXPECT_EQ(RecommendShardCount(3, {}, 1000, AdaptiveBounds(1, 8)), 3);
  EXPECT_EQ(RecommendShardCount(3, {500, 500, 500}, 0, AdaptiveBounds(1, 8)),
            3);
  // An out-of-bounds current count clamps into [min, max] regardless.
  EXPECT_EQ(RecommendShardCount(9, {}, 0, AdaptiveBounds(2, 4)), 4);
  EXPECT_EQ(RecommendShardCount(1, {}, 0, AdaptiveBounds(2, 4)), 2);
}

// ---------------------------------------------------------------------------
// Scheduling modes: work stealing, pinning, and spin-then-park must leave
// detections bit-identical to the fused single-threaded operator.

class ShardedScheduling
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardedScheduling, StealingAndPinningMatchFusedDeployment) {
  const int num_shards = std::get<0>(GetParam());
  const bool pin_and_spin = std::get<1>(GetParam()) != 0;

  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(10);
  std::vector<Event> events = Workload(7);
  std::vector<DetectionRecord> expected =
      FusedBaseline(definitions, events, MatcherOptions());
  ASSERT_FALSE(expected.empty());

  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.batch_size = 2;  // many small batches: maximal steal opportunity
  options.work_stealing = true;
  options.pin_workers = pin_and_spin;
  options.spin_wait_iterations = pin_and_spin ? 2000 : 0;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> actual;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    sharded.AddQuery(MakeSpec(std::move(compiled), Recorder(&actual)));
  }
  EPL_ASSERT_OK(sharded.Start());
  for (const Event& event : events) {
    ASSERT_TRUE(sharded.Push(event));
  }
  EPL_ASSERT_OK(sharded.Stop());

  EXPECT_EQ(sharded.processed(), events.size());
  ASSERT_TRUE(actual == expected)
      << actual.size() << " vs " << expected.size() << " detections at "
      << num_shards << " shards (stealing"
      << (pin_and_spin ? " + pinning + spin)" : ")");
}

INSTANTIATE_TEST_SUITE_P(StealPinSpin, ShardedScheduling,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Work-stealing stress: a deliberately skewed fleet (few expensive hot
// chains among many cheap cold ones) streamed in tiny batches, so idle
// workers constantly race the busy shard for its backlog. Detections must
// stay bit-identical to the fused operator at every shard count. The
// interleaving is timing-dependent by design -- this is the TSan CI leg's
// main target for the cross-shard scheduler paths.

std::vector<MultiMatchOperator::QuerySpec> SkewedFleet(
    std::vector<DetectionRecord>* records) {
  std::vector<MultiMatchOperator::QuerySpec> fleet;
  // Two 8-state chains that advance on nearly every event (hot + heavy)...
  fleet.push_back(ChainSpecX("hot_0", 8, 1.0, 60.0, Recorder(records)));
  fleet.push_back(ChainSpecX("hot_1", 8, 1.2, 55.0, Recorder(records)));
  // ...vs 14 cheap chains that rarely wake up: per-shard batch cost is
  // dominated by wherever the hot chains land.
  for (int q = 0; q < 14; ++q) {
    fleet.push_back(ChainSpecX("cold_" + std::to_string(q), 3,
                               300.0 + 10.0 * q, 2.0, Recorder(records)));
  }
  return fleet;
}

std::vector<Event> SkewedStream(int count) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(count));
  uint64_t state = 42;
  for (int i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // x in [0, 4): inside the hot windows always, inside a cold window
    // (almost) never.
    const double x = 4.0 * static_cast<double>(state >> 40) /
                     static_cast<double>(1 << 24);
    events.push_back(Event(DurationFromMillis(5.0 * i), {x}));
  }
  return events;
}

TEST(WorkStealingStressTest, SkewedFleetBitIdenticalAcrossShardCounts) {
  std::vector<DetectionRecord> expected;
  {
    MultiMatchOperator fused((MatcherOptions()));
    for (MultiMatchOperator::QuerySpec& spec : SkewedFleet(&expected)) {
      fused.AddQuery(std::move(spec));
    }
    for (const Event& event : SkewedStream(3000)) {
      EPL_EXPECT_OK(fused.Process(event));
    }
  }
  ASSERT_FALSE(expected.empty());

  for (int num_shards : {1, 2, 4, 8}) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.batch_size = 1;  // per-event handoff: maximal contention
    options.queue_capacity = 8;
    options.work_stealing = true;
    options.spin_wait_iterations = 500;
    ShardedEngine sharded(options);
    std::vector<DetectionRecord> actual;
    for (MultiMatchOperator::QuerySpec& spec : SkewedFleet(&actual)) {
      sharded.AddQuery(std::move(spec));
    }
    EPL_ASSERT_OK(sharded.Start());
    for (const Event& event : SkewedStream(3000)) {
      ASSERT_TRUE(sharded.Push(event));
    }
    EPL_ASSERT_OK(sharded.Stop());
    ASSERT_TRUE(actual == expected)
        << actual.size() << " vs " << expected.size() << " detections at "
        << num_shards << " shards under stealing stress";
  }
}

// ---------------------------------------------------------------------------
// Composite ladders under stealing stress: the same skewed fleet, now
// tagged so a 2-level composite ladder consumes its detections. The base
// inputs span every shard while idle workers steal the hot shard's
// backlog, so the (event-seq, level, query-id) watermark merge is the
// only thing keeping epochs ordered -- any reorder, dropped epoch, or
// merge/runner race diverges from the fused baseline (and trips TSan in
// the sanitizer CI leg, which is this test's main target).

std::vector<MultiMatchOperator::QuerySpec> CompositeSkewedFleet(
    std::vector<DetectionRecord>* records) {
  std::vector<MultiMatchOperator::QuerySpec> fleet = SkewedFleet(records);
  for (MultiMatchOperator::QuerySpec& spec : fleet) {
    spec.tag = GestureTag(spec.output_name);
  }
  auto composite = [&](const std::string& name, int level,
                       const std::vector<std::string>& inputs) {
    std::vector<PatternExprPtr> poses;
    for (const std::string& input : inputs) {
      poses.push_back(PatternExpr::Pose(
          kDetectionStreamName,
          Expr::RangePredicate(kDetectionGestureField, GestureTag(input),
                               0.5)));
    }
    Result<CompiledPattern> compiled = CompiledPattern::Compile(
        *PatternExpr::Sequence(std::move(poses), std::nullopt,
                               WithinMode::kSpan),
        DetectionSchema());
    EPL_CHECK(compiled.ok()) << compiled.status();
    MultiMatchOperator::QuerySpec spec;
    spec.output_name = name;
    spec.pattern = std::move(compiled).value();
    spec.callback = Recorder(records);
    spec.level = level;
    spec.tag = GestureTag(name);
    return spec;
  };
  // High-volume level 1 (one pose: fires on every hot_0 detection), a
  // two-input level 1 whose inputs land on different shards, and a level
  // 2 consuming a composite -- detections of detections.
  fleet.push_back(composite("hot_echo", 1, {"hot_0"}));
  fleet.push_back(composite("pair_of_hots", 1, {"hot_0", "hot_1"}));
  fleet.push_back(composite("meta_pair", 2, {"pair_of_hots"}));
  return fleet;
}

TEST(WorkStealingStressTest, CompositeLaddersBitIdenticalUnderStealing) {
  std::vector<DetectionRecord> expected;
  {
    MultiMatchOperator fused((MatcherOptions()));
    for (MultiMatchOperator::QuerySpec& spec :
         CompositeSkewedFleet(&expected)) {
      fused.AddQuery(std::move(spec));
    }
    for (const Event& event : SkewedStream(3000)) {
      EPL_EXPECT_OK(fused.Process(event));
    }
  }
  ASSERT_FALSE(expected.empty());
  size_t composite_detections = 0;
  for (const DetectionRecord& record : expected) {
    composite_detections += record.name == "hot_echo" ||
                            record.name == "pair_of_hots" ||
                            record.name == "meta_pair";
  }
  ASSERT_GT(composite_detections, 0u)
      << "the skewed stream produced no composite detections";

  for (int num_shards : {1, 2, 4, 8}) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.batch_size = 1;  // per-event handoff: maximal contention
    options.queue_capacity = 8;
    options.work_stealing = true;
    options.spin_wait_iterations = 500;
    ShardedEngine sharded(options);
    std::vector<DetectionRecord> actual;
    for (MultiMatchOperator::QuerySpec& spec : CompositeSkewedFleet(&actual)) {
      sharded.AddQuery(std::move(spec));
    }
    EPL_ASSERT_OK(sharded.Start());
    for (const Event& event : SkewedStream(3000)) {
      ASSERT_TRUE(sharded.Push(event));
    }
    EPL_ASSERT_OK(sharded.Stop());
    ASSERT_TRUE(actual == expected)
        << actual.size() << " vs " << expected.size() << " detections at "
        << num_shards << " shards under composite stealing stress";
  }
}

// ---------------------------------------------------------------------------
// Fleet resizing.

TEST(ShardedEngineTest, ResizeGrowsAndShrinksPreservingDetections) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(8);
  std::vector<Event> events = Workload(7);
  std::vector<DetectionRecord> expected =
      FusedBaseline(definitions, events, MatcherOptions());
  ASSERT_FALSE(expected.empty());

  ShardedEngineOptions options;
  options.num_shards = 1;
  options.batch_size = 4;
  options.work_stealing = true;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> actual;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    sharded.AddQuery(MakeSpec(std::move(compiled), Recorder(&actual)));
  }
  EPL_ASSERT_OK(sharded.Start());

  const size_t third = events.size() / 3;
  for (size_t i = 0; i < third; ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Resize(4));  // grow mid-stream, mid-gesture
  EXPECT_EQ(sharded.num_shards(), 4);
  for (size_t i = third; i < 2 * third; ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Resize(2));  // shrink mid-stream, mid-gesture
  EXPECT_EQ(sharded.num_shards(), 2);
  // Every query survived the migrations under its stable id.
  EXPECT_EQ(sharded.num_queries(), definitions.size());
  for (size_t i = 2 * third; i < events.size(); ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Stop());

  EXPECT_EQ(sharded.resize_count(), 2u);
  ASSERT_TRUE(actual == expected)
      << actual.size() << " vs " << expected.size()
      << " detections across grow + shrink";
}

TEST(ShardedEngineTest, ResizeBeforeStartAndNoopResize) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine sharded(options);
  sharded.AddQuery(ChainSpecX("a", 3, 1.0, 50.0, nullptr));
  sharded.AddQuery(ChainSpecX("b", 3, 2.0, 50.0, nullptr));
  // Cold resize restructures the fleet before any worker exists.
  EPL_ASSERT_OK(sharded.Resize(3));
  EXPECT_EQ(sharded.num_shards(), 3);
  EPL_ASSERT_OK(sharded.Resize(1));
  EXPECT_EQ(sharded.num_shards(), 1);
  EXPECT_EQ(sharded.num_queries(), 2u);
  // Same-size resizes are free and uncounted.
  EPL_ASSERT_OK(sharded.Resize(1));
  EXPECT_EQ(sharded.resize_count(), 2u);
  // Requests are clamped like the constructor's num_shards.
  EPL_ASSERT_OK(sharded.Resize(0));
  EXPECT_EQ(sharded.num_shards(), 1);
  EPL_ASSERT_OK(sharded.Start());
  EXPECT_TRUE(sharded.Push(Event(0, {1.0})));
  EPL_ASSERT_OK(sharded.Stop());
}

TEST(ShardedEngineTest, AdaptiveSizingFollowsForcedPolicyEndToEnd) {
  const std::vector<Event> events = SkewedStream(2000);
  std::vector<DetectionRecord> expected;
  {
    MultiMatchOperator fused((MatcherOptions()));
    for (MultiMatchOperator::QuerySpec& spec : SkewedFleet(&expected)) {
      fused.AddQuery(std::move(spec));
    }
    for (const Event& event : events) {
      EPL_EXPECT_OK(fused.Process(event));
    }
  }
  ASSERT_FALSE(expected.empty());

  // Grow leg: a zero grow threshold makes every observation window with
  // any busy time recommend one more shard, so the fleet must climb to
  // max_shards while detections stay exact.
  ShardedEngineOptions grow;
  grow.num_shards = 1;
  grow.batch_size = 4;
  grow.adaptive.enabled = true;
  grow.adaptive.min_shards = 1;
  grow.adaptive.max_shards = 3;
  grow.adaptive.check_every_events = 32;
  grow.adaptive.grow_utilization = 0.0;
  // A fully idle window (producer starved before any worker ran) would
  // satisfy the shrink branch and oscillate the fleet on a loaded
  // machine; a negative threshold disables shrinking for the forced
  // grow policy.
  grow.adaptive.shrink_utilization = -1.0;
  ShardedEngine growing(grow);
  std::vector<DetectionRecord> grow_records;
  for (MultiMatchOperator::QuerySpec& spec : SkewedFleet(&grow_records)) {
    growing.AddQuery(std::move(spec));
  }
  EPL_ASSERT_OK(growing.Start());
  size_t pushed = 0;
  for (const Event& event : events) {
    ASSERT_TRUE(growing.Push(event));
    if (++pushed % 32 == 0) {
      // Drain between windows so every observation window has recorded
      // busy time, whatever the worker/producer interleaving.
      EPL_ASSERT_OK(growing.Flush());
    }
  }
  EXPECT_EQ(growing.num_shards(), 3);
  EXPECT_GE(growing.resize_count(), 2u);
  EPL_ASSERT_OK(growing.Stop());
  EXPECT_TRUE(grow_records == expected);

  // Shrink leg: an unreachable grow threshold plus an always-satisfied
  // shrink threshold walks the fleet down to min_shards no matter how
  // busy the workers actually were.
  ShardedEngineOptions shrink;
  shrink.num_shards = 4;
  shrink.batch_size = 4;
  shrink.adaptive.enabled = true;
  shrink.adaptive.min_shards = 1;
  shrink.adaptive.max_shards = 4;
  shrink.adaptive.check_every_events = 32;
  shrink.adaptive.grow_utilization = 2.0;  // peak utilization can't exceed 1
  shrink.adaptive.shrink_utilization = 8.0;
  ShardedEngine shrinking(shrink);
  std::vector<DetectionRecord> shrink_records;
  for (MultiMatchOperator::QuerySpec& spec : SkewedFleet(&shrink_records)) {
    shrinking.AddQuery(std::move(spec));
  }
  EPL_ASSERT_OK(shrinking.Start());
  pushed = 0;
  for (const Event& event : events) {
    ASSERT_TRUE(shrinking.Push(event));
    if (++pushed % 32 == 0) {
      EPL_ASSERT_OK(shrinking.Flush());
    }
  }
  EXPECT_EQ(shrinking.num_shards(), 1);
  EPL_ASSERT_OK(shrinking.Stop());
  EXPECT_TRUE(shrink_records == expected);
}

// ---------------------------------------------------------------------------
// Interest-routed fan-out + session-affinity placement: events reach only
// the shards hosting their session's queries, skipped shards advance by
// token, and detections stay bit-identical to broadcast and to the fused
// operator.

constexpr int kRoutedSessions = 4;
constexpr int kRoutedSessionField = 1;

/// An n-state chain over {"x", "session"} gated to one session: the gate
/// admits only events whose trailing session field equals `session`, and
/// the spec carries the engine's (session_tag, session_scoped) routing
/// contract -- exactly what GestureRuntime stamps on session deploys.
MultiMatchOperator::QuerySpec SessionChainSpec(const std::string& name,
                                               int session, int states,
                                               double center, double width,
                                               DetectionCallback callback) {
  static const stream::Schema* schema =
      new stream::Schema(std::vector<std::string>{"x", "session"});
  std::vector<PatternExprPtr> poses;
  for (int s = 0; s < states; ++s) {
    poses.push_back(PatternExpr::Pose(
        "s", Expr::RangePredicate("x", center + 0.001 * s, width)));
  }
  Result<CompiledPattern> compiled = CompiledPattern::Compile(
      *PatternExpr::Sequence(std::move(poses), std::nullopt, WithinMode::kGap),
      *schema);
  EPL_CHECK(compiled.ok()) << compiled.status();
  Result<CompiledPattern> gate = CompiledPattern::Compile(
      *PatternExpr::Pose("s", Expr::RangePredicate(
                                  "session", static_cast<double>(session),
                                  0.5)),
      *schema);
  EPL_CHECK(gate.ok()) << gate.status();
  MultiMatchOperator::QuerySpec spec;
  spec.output_name = name;
  spec.pattern = std::move(compiled).value();
  spec.gate =
      std::make_shared<const CompiledPattern>(std::move(gate).value());
  spec.session_tag = static_cast<double>(session);
  spec.session_scoped = true;
  spec.callback = std::move(callback);
  return spec;
}

/// Two chains per session, all firing on the same x-range so every
/// session produces detections. Weights are equal across sessions (6 + 8),
/// which lets kSessionAffinity pack one session per shard at 4 shards.
std::vector<MultiMatchOperator::QuerySpec> SessionFleet(
    std::vector<DetectionRecord>* records) {
  std::vector<MultiMatchOperator::QuerySpec> fleet;
  for (int k = 0; k < kRoutedSessions; ++k) {
    const std::string tag = "_s" + std::to_string(k);
    fleet.push_back(
        SessionChainSpec("chain_a" + tag, k, 3, 1.0, 50.0, Recorder(records)));
    fleet.push_back(
        SessionChainSpec("chain_b" + tag, k, 4, 1.2, 40.0, Recorder(records)));
  }
  return fleet;
}

/// Pseudo-random x stream with the session id cycling through `sessions`
/// as the trailing field (sessions == 1 pins every event to session 0).
std::vector<Event> SessionStream(int count, int sessions) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(count));
  uint64_t state = 7;
  for (int i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x = 4.0 * static_cast<double>(state >> 40) /
                     static_cast<double>(1 << 24);
    events.push_back(Event(DurationFromMillis(5.0 * i),
                           {x, static_cast<double>(i % sessions)}));
  }
  return events;
}

std::vector<DetectionRecord> SessionBaseline(const std::vector<Event>& events) {
  std::vector<DetectionRecord> records;
  MultiMatchOperator fused((MatcherOptions()));
  for (MultiMatchOperator::QuerySpec& spec : SessionFleet(&records)) {
    fused.AddQuery(std::move(spec));
  }
  for (const Event& event : events) {
    EPL_EXPECT_OK(fused.Process(event));
  }
  return records;
}

struct RoutedRun {
  std::vector<DetectionRecord> records;
  ShardedEngine::EngineStats stats;
  uint64_t processed = 0;
};

RoutedRun RunSessionFleet(const std::vector<Event>& events,
                          const ShardedEngineOptions& options) {
  ShardedEngine sharded(options);
  RoutedRun run;
  for (MultiMatchOperator::QuerySpec& spec : SessionFleet(&run.records)) {
    sharded.AddQuery(std::move(spec));
  }
  EPL_CHECK(sharded.Start().ok());
  for (const Event& event : events) {
    EPL_CHECK(sharded.Push(event));
  }
  Status stopped = sharded.Stop();
  EPL_CHECK(stopped.ok()) << stopped;
  run.stats = sharded.engine_stats();
  run.processed = sharded.processed();
  return run;
}

TEST(InterestRoutingTest, RoutedMatchesBroadcastBitIdentically) {
  const std::vector<Event> events = SessionStream(2000, kRoutedSessions);
  const std::vector<DetectionRecord> expected = SessionBaseline(events);
  ASSERT_FALSE(expected.empty());

  for (int num_shards : {1, 4}) {
    ShardedEngineOptions broadcast;
    broadcast.num_shards = num_shards;
    broadcast.batch_size = 8;
    const RoutedRun off = RunSessionFleet(events, broadcast);

    ShardedEngineOptions routed = broadcast;
    routed.routing_field = kRoutedSessionField;
    routed.placement = ShardPlacement::kSessionAffinity;
    const RoutedRun on = RunSessionFleet(events, routed);

    EXPECT_EQ(on.processed, events.size());
    ASSERT_TRUE(off.records == expected)
        << off.records.size() << " vs " << expected.size()
        << " broadcast detections at " << num_shards << " shards";
    ASSERT_TRUE(on.records == expected)
        << on.records.size() << " vs " << expected.size()
        << " routed detections at " << num_shards << " shards";
    if (num_shards == 1) {
      // One shard hosts every session: routing degenerates to full
      // windows sharing the producer's batch, with nothing to skip.
      EXPECT_EQ(on.stats.fanout_subbatches, 0u);
      EXPECT_EQ(on.stats.events_skipped_by_filter, 0u);
      EXPECT_EQ(on.stats.events_routed, off.stats.events_routed);
    } else {
      // Affinity packs one session per shard, so each 8-event round-robin
      // window splits into 2-event sub-batches: 4x fewer copies.
      EXPECT_GT(on.stats.fanout_subbatches, 0u);
      EXPECT_GT(on.stats.events_skipped_by_filter, 0u);
      EXPECT_LT(on.stats.events_routed, off.stats.events_routed);
      EXPECT_EQ(on.stats.events_routed + on.stats.events_skipped_by_filter,
                off.stats.events_routed);
    }
  }
}

TEST(InterestRoutingTest, AffinityPacksSessionsBalancedSpreadsThem) {
  ShardedEngineOptions options;
  options.num_shards = kRoutedSessions;
  options.routing_field = kRoutedSessionField;
  options.placement = ShardPlacement::kSessionAffinity;
  ShardedEngine sharded(options);
  std::vector<std::pair<int, int>> ids;  // (session, query id)
  for (int k = 0; k < kRoutedSessions; ++k) {
    const std::string tag = "_s" + std::to_string(k);
    ids.emplace_back(
        k, sharded.AddQuery(SessionChainSpec("a" + tag, k, 3, 1.0, 50.0,
                                             nullptr)));
    ids.emplace_back(
        k, sharded.AddQuery(SessionChainSpec("b" + tag, k, 4, 1.2, 40.0,
                                             nullptr)));
  }
  // Every session's queries share one shard, and the four equal-weight
  // sessions land on four distinct shards (no skew to pay for packing).
  std::vector<int> session_shard(kRoutedSessions, -1);
  for (const auto& [session, id] : ids) {
    const int shard = sharded.shard_of(id);
    if (session_shard[static_cast<size_t>(session)] < 0) {
      session_shard[static_cast<size_t>(session)] = shard;
    }
    EXPECT_EQ(shard, session_shard[static_cast<size_t>(session)])
        << "session " << session << " split across shards";
  }
  std::vector<int> sorted = session_shard;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sharded.shard_weights(),
            (std::vector<uint64_t>{14, 14, 14, 14}));
}

TEST(InterestRoutingTest, SkippedShardsAdvanceByTokenWithoutWakeups) {
  // Every event belongs to session 0, so with affinity placement three of
  // the four shards host no interested query at all.
  const std::vector<Event> events = SessionStream(2000, 1);
  const std::vector<DetectionRecord> expected = SessionBaseline(events);
  ASSERT_FALSE(expected.empty());

  ShardedEngineOptions broadcast;
  broadcast.num_shards = 4;
  broadcast.batch_size = 8;
  const RoutedRun off = RunSessionFleet(events, broadcast);
  ASSERT_TRUE(off.records == expected);

  ShardedEngineOptions routed = broadcast;
  routed.routing_field = kRoutedSessionField;
  routed.placement = ShardPlacement::kSessionAffinity;
  const RoutedRun on = RunSessionFleet(events, routed);

  ASSERT_TRUE(on.records == expected)
      << on.records.size() << " vs " << expected.size()
      << " detections with three fully skipped shards";
  // The skipped shards' watermarks advanced without queue traffic: every
  // window hands 3 advance tokens out, and the producer signalled far
  // fewer worker wakeups than the 4-destinations-per-window broadcast.
  EXPECT_EQ(on.processed, events.size());
  EXPECT_GT(on.stats.advance_tokens, 0u);
  EXPECT_EQ(on.stats.events_routed, events.size());
  EXPECT_EQ(on.stats.events_skipped_by_filter, 3 * events.size());
  EXPECT_LT(on.stats.worker_wakeups, off.stats.worker_wakeups);
}

TEST(InterestRoutingTest, FlippedInterestBitLosesExactlyThatSession) {
  // Mutation test backing the differential-fuzz leg: routing is only
  // trustworthy if a single wrong interest bit visibly diverges.
  const std::vector<Event> events = SessionStream(2000, kRoutedSessions);
  const std::vector<DetectionRecord> expected = SessionBaseline(events);
  ASSERT_FALSE(expected.empty());

  ShardedEngineOptions options;
  options.num_shards = 4;
  options.batch_size = 8;
  options.routing_field = kRoutedSessionField;
  options.placement = ShardPlacement::kSessionAffinity;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> actual;
  int mutated_session_query = -1;
  for (MultiMatchOperator::QuerySpec& spec : SessionFleet(&actual)) {
    const bool mutated = spec.session_tag == 2.0;
    const int id = sharded.AddQuery(std::move(spec));
    if (mutated && mutated_session_query < 0) {
      mutated_session_query = id;
    }
  }
  ASSERT_GE(mutated_session_query, 0);
  // Drop session 2's true interest bit: its events now bypass the shard
  // hosting its queries (no rebuild runs during a pure Push stream).
  sharded.TestOnlyFlipInterestBit(2.0, sharded.shard_of(
                                           mutated_session_query));
  EPL_ASSERT_OK(sharded.Start());
  for (const Event& event : events) {
    ASSERT_TRUE(sharded.Push(event));
  }
  EPL_ASSERT_OK(sharded.Stop());

  // Session 2's detections vanish; every other session is untouched.
  std::vector<DetectionRecord> without_s2;
  for (const DetectionRecord& record : expected) {
    if (record.name.find("_s2") == std::string::npos) {
      without_s2.push_back(record);
    }
  }
  ASSERT_LT(without_s2.size(), expected.size())
      << "baseline produced no session-2 detections to lose";
  EXPECT_TRUE(actual == without_s2)
      << actual.size() << " vs " << without_s2.size()
      << " detections after dropping session 2's interest bit";
}

TEST(InterestRoutingTest, ResizePreservesRoutingAndAffinity) {
  const std::vector<Event> events = SessionStream(2100, kRoutedSessions);
  const std::vector<DetectionRecord> expected = SessionBaseline(events);
  ASSERT_FALSE(expected.empty());

  ShardedEngineOptions options;
  options.num_shards = 1;
  options.batch_size = 8;
  options.routing_field = kRoutedSessionField;
  options.placement = ShardPlacement::kSessionAffinity;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> actual;
  std::vector<std::pair<int, int>> ids;  // (session, query id)
  {
    std::vector<MultiMatchOperator::QuerySpec> fleet = SessionFleet(&actual);
    for (size_t q = 0; q < fleet.size(); ++q) {
      const int session = static_cast<int>(fleet[q].session_tag);
      ids.emplace_back(session, sharded.AddQuery(std::move(fleet[q])));
    }
  }
  EPL_ASSERT_OK(sharded.Start());
  const size_t third = events.size() / 3;
  for (size_t i = 0; i < third; ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Resize(4));  // grow: interest index must follow
  for (size_t i = third; i < 2 * third; ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Resize(2));  // shrink: sessions re-pack onto survivors
  for (size_t i = 2 * third; i < events.size(); ++i) {
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Stop());

  ASSERT_TRUE(actual == expected)
      << actual.size() << " vs " << expected.size()
      << " detections across routed grow + shrink";
  // Post-shrink the four sessions still live un-split on the two
  // survivors (affinity-preserving migration).
  std::vector<int> session_shard(kRoutedSessions, -1);
  for (const auto& [session, id] : ids) {
    const int shard = sharded.shard_of(id);
    if (session_shard[static_cast<size_t>(session)] < 0) {
      session_shard[static_cast<size_t>(session)] = shard;
    }
    EXPECT_EQ(shard, session_shard[static_cast<size_t>(session)])
        << "session " << session << " split across shards after shrink";
  }
}

}  // namespace
}  // namespace epl::cep
