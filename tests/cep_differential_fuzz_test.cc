// Randomized differential fuzzing of the multi-pattern runtime: random
// patterns (1-4 states, range / conjunction / fallback predicates, gap and
// span time constraints, both consume policies) run over random event
// streams (random walks with timestamp jitter, NaN and infinity
// injection), and three independent executions must agree bit-exactly on
// every pattern's match sequence:
//
//   1. per-query NfaMatcher::Process      (the behavioral oracle)
//   2. MultiPatternMatcher::Process       (flat, one event at a time)
//   3. MultiPatternMatcher::ProcessBatch  (flat, random batch chunking)
//
// Every scenario derives from a logged seed: on failure the error message
// names the exact environment (EPL_FUZZ_SEED / EPL_FUZZ_SCENARIOS) that
// replays just that scenario. CI runs the suite twice: the normal ctest
// job uses the fixed default seed below, and the ASan/UBSan job adds a
// longer wall-clock-bounded randomized pass (EPL_FUZZ_TIME_BUDGET_MS with
// a per-run seed).
//
// A second leg (FeedbackTopologyAgreesWithTwoPassOracle) fuzzes the
// feedback topology of cep/composite.h: random base patterns plus a
// random 2-3-level composite DAG over their detection streams, where the
// oracle evaluates each source event's epoch naively level by level with
// independent matchers, and the fused operator and the sharded engine at
// 1 and 4 shards must reproduce every match sequence bit-exactly.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cep/composite.h"
#include "cep/detection.h"
#include "cep/matcher.h"
#include "cep/multi_match_operator.h"
#include "cep/multi_matcher.h"
#include "common/logging.h"
#include "cep/nfa.h"
#include "cep/pattern.h"
#include "cep/sharded_engine.h"
#include "cep/simd.h"
#include "stream/event.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;

constexpr uint64_t kDefaultSeed = 0x5EED2026;
constexpr int kDefaultScenarios = 24;

const stream::Schema& FuzzSchema() {
  static const stream::Schema* schema =
      new stream::Schema(std::vector<std::string>{"a", "b", "c"});
  return *schema;
}

const char* FieldName(int field) {
  static const char* kFields[] = {"a", "b", "c"};
  return kFields[field];
}

uint64_t EnvSeed() {
  const char* value = std::getenv("EPL_FUZZ_SEED");
  return value != nullptr ? std::strtoull(value, nullptr, 10) : kDefaultSeed;
}

int EnvScenarios() {
  const char* value = std::getenv("EPL_FUZZ_SCENARIOS");
  return value != nullptr ? std::atoi(value) : kDefaultScenarios;
}

int64_t EnvTimeBudgetMs() {
  const char* value = std::getenv("EPL_FUZZ_TIME_BUDGET_MS");
  return value != nullptr ? std::atoll(value) : 0;
}

double Uniform(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

int UniformInt(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

ExprPtr RandomRange(std::mt19937_64& rng) {
  return Expr::RangePredicate(FieldName(UniformInt(rng, 0, 2)),
                              Uniform(rng, -40.0, 40.0),
                              Uniform(rng, 0.5, 25.0));
}

/// Range predicates dominate (the learned-query shape the interval index
/// serves); conjunctions exercise multi-field intersection and the
/// remaining shapes are deliberately non-decomposable so the fallback
/// (lazy ExprProgram) path stays under test.
ExprPtr RandomPredicate(std::mt19937_64& rng) {
  const int roll = UniformInt(rng, 0, 99);
  if (roll < 50) {
    return RandomRange(rng);
  }
  if (roll < 70) {
    const int f1 = UniformInt(rng, 0, 2);
    const int f2 = (f1 + UniformInt(rng, 1, 2)) % 3;
    std::vector<ExprPtr> terms;
    terms.push_back(Expr::RangePredicate(FieldName(f1),
                                         Uniform(rng, -40.0, 40.0),
                                         Uniform(rng, 2.0, 30.0)));
    terms.push_back(Expr::RangePredicate(FieldName(f2),
                                         Uniform(rng, -40.0, 40.0),
                                         Uniform(rng, 2.0, 30.0)));
    return Expr::And(std::move(terms));
  }
  if (roll < 80) {
    // abs(field - c) > w: a disjunction of half-lines, not an interval.
    return Expr::Binary(
        BinaryOp::kGt,
        Expr::Abs(Expr::Binary(BinaryOp::kSub,
                               Expr::Field(FieldName(UniformInt(rng, 0, 2))),
                               Expr::Constant(Uniform(rng, -30.0, 30.0)))),
        Expr::Constant(Uniform(rng, 1.0, 25.0)));
  }
  if (roll < 90) {
    // Two-field linear form: ExtractLinear rejects it.
    const int f1 = UniformInt(rng, 0, 2);
    const int f2 = (f1 + UniformInt(rng, 1, 2)) % 3;
    return Expr::Binary(BinaryOp::kLt,
                        Expr::Binary(BinaryOp::kAdd,
                                     Expr::Field(FieldName(f1)),
                                     Expr::Field(FieldName(f2))),
                        Expr::Constant(Uniform(rng, -40.0, 40.0)));
  }
  return Expr::Binary(BinaryOp::kOr, RandomRange(rng), RandomRange(rng));
}

PatternExprPtr RandomPattern(std::mt19937_64& rng) {
  const int num_states = UniformInt(rng, 1, 4);
  std::vector<ExprPtr> predicates;
  predicates.reserve(static_cast<size_t>(num_states));
  for (int s = 0; s < num_states; ++s) {
    if (s > 0 && UniformInt(rng, 0, 3) == 0) {
      // Duplicate an earlier state's predicate: exercises the per-pattern
      // distinct-slot dedup and the bank's cross-pattern canonical keys.
      predicates.push_back(
          predicates[static_cast<size_t>(UniformInt(rng, 0, s - 1))]
              ->Clone());
    } else {
      predicates.push_back(RandomPredicate(rng));
    }
  }

  const ConsumePolicy consume =
      UniformInt(rng, 0, 9) < 7 ? ConsumePolicy::kAll : ConsumePolicy::kNone;
  std::optional<Duration> within;
  WithinMode mode = WithinMode::kGap;
  switch (UniformInt(rng, 0, 2)) {
    case 0:
      break;  // unconstrained
    case 1:
      within = DurationFromMillis(Uniform(rng, 40.0, 2000.0));
      mode = WithinMode::kGap;
      break;
    default:
      within = DurationFromMillis(Uniform(rng, 80.0, 4000.0));
      mode = WithinMode::kSpan;
      break;
  }

  std::vector<PatternExprPtr> poses;
  poses.reserve(predicates.size());
  for (ExprPtr& predicate : predicates) {
    poses.push_back(PatternExpr::Pose("fuzz", std::move(predicate)));
  }

  if (num_states >= 3 && UniformInt(rng, 0, 1) == 0) {
    // Nest a prefix sequence with its own gap bound, so constraints from
    // different nesting levels overlap on the same states.
    const int split = UniformInt(rng, 2, num_states - 1);
    std::vector<PatternExprPtr> inner;
    for (int s = 0; s < split; ++s) {
      inner.push_back(std::move(poses[static_cast<size_t>(s)]));
    }
    std::vector<PatternExprPtr> outer;
    outer.push_back(PatternExpr::Sequence(
        std::move(inner), DurationFromMillis(Uniform(rng, 40.0, 1500.0)),
        WithinMode::kGap));
    for (int s = split; s < num_states; ++s) {
      outer.push_back(std::move(poses[static_cast<size_t>(s)]));
    }
    return PatternExpr::Sequence(std::move(outer), within, mode,
                                 SelectPolicy::kFirst, consume);
  }
  return PatternExpr::Sequence(std::move(poses), within, mode,
                               SelectPolicy::kFirst, consume);
}

std::vector<Event> RandomEvents(std::mt19937_64& rng, int count) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(count));
  TimePoint now = 0;
  std::vector<double> values(3);
  for (double& v : values) {
    v = Uniform(rng, -45.0, 45.0);
  }
  for (int i = 0; i < count; ++i) {
    if (i > 0 && UniformInt(rng, 0, 19) != 0) {
      now += DurationFromMillis(Uniform(rng, 1.0, 120.0));
    }  // else: duplicate timestamp (non-decreasing is the only contract)
    Event event;
    event.timestamp = now;
    event.values.resize(3);
    for (size_t f = 0; f < 3; ++f) {
      values[f] += Uniform(rng, -8.0, 8.0);
      if (UniformInt(rng, 0, 39) == 0) {
        values[f] = Uniform(rng, -45.0, 45.0);  // occasional jump
      }
      event.values[f] = values[f];
      const int special = UniformInt(rng, 0, 99);
      if (special == 0) {
        event.values[f] = std::numeric_limits<double>::quiet_NaN();
      } else if (special == 1) {
        event.values[f] = UniformInt(rng, 0, 1) == 0
                              ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

using MatchLists = std::vector<std::vector<PatternMatch>>;

bool SameMatches(const MatchLists& a, const MatchLists& b,
                 std::string* diff) {
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) {
      *diff = "pattern " + std::to_string(q) + ": " +
              std::to_string(a[q].size()) + " vs " +
              std::to_string(b[q].size()) + " matches";
      return false;
    }
    for (size_t m = 0; m < a[q].size(); ++m) {
      if (a[q][m].state_times != b[q][m].state_times) {
        *diff = "pattern " + std::to_string(q) + " match " +
                std::to_string(m) + " state_times diverge";
        return false;
      }
    }
  }
  return true;
}

/// Runs one seeded scenario in one matcher mode; returns the total match
/// count (so the suite can assert it is not vacuously passing).
size_t RunScenario(uint64_t scenario_seed, MatcherOptions::Mode mode) {
  std::mt19937_64 rng(scenario_seed);
  const int num_patterns = UniformInt(rng, 1, 5);
  const int num_events =
      mode == MatcherOptions::Mode::kExhaustive ? 160 : 400;

  std::vector<PatternExprPtr> exprs;
  std::vector<CompiledPattern> patterns;
  for (int q = 0; q < num_patterns; ++q) {
    exprs.push_back(RandomPattern(rng));
    Result<CompiledPattern> compiled =
        CompiledPattern::Compile(*exprs.back(), FuzzSchema());
    EPL_CHECK(compiled.ok()) << compiled.status();
    patterns.push_back(std::move(compiled).value());
  }
  // Gated twins: every pattern is ALSO registered a second time with a
  // random gate predicate. The runtime gets the original (unconjoined)
  // pattern plus the gate -- it must enforce the gate as an extra conjunct
  // on every state -- while the oracle runs an explicitly conjoined clone
  // (Rescope), so any gate enforcement or group-skip bug diverges here.
  // Non-decomposable gates keep the fallback gate-read path under test.
  std::vector<ExprPtr> gate_exprs;
  std::vector<CompiledPattern> gates;
  for (int q = 0; q < num_patterns; ++q) {
    ExprPtr gate =
        UniformInt(rng, 0, 3) == 0
            ? Expr::Binary(BinaryOp::kOr, RandomRange(rng), RandomRange(rng))
            : RandomRange(rng);
    PatternExprPtr pose = PatternExpr::Pose("fuzz", gate->Clone());
    Result<CompiledPattern> compiled_gate =
        CompiledPattern::Compile(*pose, FuzzSchema());
    EPL_CHECK(compiled_gate.ok()) << compiled_gate.status();
    gates.push_back(std::move(compiled_gate).value());
    // The oracle's conjoined clone of the twin at index num_patterns + q.
    exprs.push_back(exprs[static_cast<size_t>(q)]->Rescope("", gate.get()));
    Result<CompiledPattern> compiled =
        CompiledPattern::Compile(*exprs.back(), FuzzSchema());
    EPL_CHECK(compiled.ok()) << compiled.status();
    patterns.push_back(std::move(compiled).value());
    gate_exprs.push_back(std::move(gate));
  }
  const int total_patterns = 2 * num_patterns;
  // What the runtime registers for index q: originals run ungated; the
  // twin of pattern q reuses the ORIGINAL compiled pattern (shared pose
  // predicates, the production shape) plus gates[q].
  auto runtime_pattern = [&](int index) -> const CompiledPattern* {
    return index >= num_patterns
               ? &patterns[static_cast<size_t>(index - num_patterns)]
               : &patterns[static_cast<size_t>(index)];
  };
  auto gate_of = [&](int index) -> const CompiledPattern* {
    return index >= num_patterns ? &gates[static_cast<size_t>(
                                       index - num_patterns)]
                                 : nullptr;
  };
  const std::vector<Event> events = RandomEvents(rng, num_events);

  MatcherOptions options;
  options.mode = mode;
  // A small run cap makes exhaustive overflow (oldest-run drop) part of
  // the differential surface instead of a rare untested branch.
  options.max_runs = 256;

  // 1. Oracle: independent per-query matchers (gated twins included; the
  // oracle never sees gates, only the conjoined predicates).
  MatchLists oracle(static_cast<size_t>(total_patterns));
  for (int q = 0; q < total_patterns; ++q) {
    NfaMatcher matcher(&patterns[static_cast<size_t>(q)], options);
    for (const Event& event : events) {
      matcher.Process(event, &oracle[static_cast<size_t>(q)]);
    }
  }

  // 2. Flat, one event at a time.
  MatchLists flat(static_cast<size_t>(total_patterns));
  {
    MultiPatternMatcher multi(options);
    for (int q = 0; q < total_patterns; ++q) {
      multi.AddPattern(runtime_pattern(q), gate_of(q));
    }
    std::vector<MultiPatternMatcher::MultiMatch> scratch;
    for (const Event& event : events) {
      scratch.clear();
      multi.Process(event, &scratch);
      for (MultiPatternMatcher::MultiMatch& match : scratch) {
        flat[static_cast<size_t>(match.pattern_index)].push_back(
            std::move(match.match));
      }
    }
  }

  // 3. Flat, random batch chunking (including single-event chunks).
  MatchLists batched(static_cast<size_t>(total_patterns));
  {
    MultiPatternMatcher multi(options);
    for (int q = 0; q < total_patterns; ++q) {
      multi.AddPattern(runtime_pattern(q), gate_of(q));
    }
    std::vector<MultiPatternMatcher::MultiMatch> scratch;
    size_t pos = 0;
    while (pos < events.size()) {
      const size_t chunk = std::min<size_t>(
          static_cast<size_t>(UniformInt(rng, 1, 17)), events.size() - pos);
      scratch.clear();
      multi.ProcessBatch(events.data() + pos, chunk, &scratch);
      int last_index = 0;
      for (MultiPatternMatcher::MultiMatch& match : scratch) {
        // Tags must be valid and per-event ordered.
        EPL_CHECK(match.batch_index >= last_index &&
                  match.batch_index < static_cast<int>(chunk))
            << "batch_index out of order";
        last_index = match.batch_index;
        batched[static_cast<size_t>(match.pattern_index)].push_back(
            std::move(match.match));
      }
      pos += chunk;
    }
  }

  std::string diff;
  EXPECT_TRUE(SameMatches(oracle, flat, &diff))
      << "flat-unbatched diverged from the NfaMatcher oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";
  EXPECT_TRUE(SameMatches(oracle, batched, &diff))
      << "flat-batched diverged from the NfaMatcher oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";

  size_t total = 0;
  for (const std::vector<PatternMatch>& matches : oracle) {
    total += matches.size();
  }
  return total;
}

TEST(DifferentialFuzzTest, BatchedFlatAndOracleAgree) {
  const uint64_t base_seed = EnvSeed();
  const int64_t budget_ms = EnvTimeBudgetMs();
  const int scenarios = EnvScenarios();
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  size_t total_matches = 0;
  int ran = 0;
  // Fixed scenario count by default (deterministic ctest); when a time
  // budget is set, keep drawing fresh scenarios until it is spent.
  for (int i = 0; budget_ms > 0 ? elapsed_ms() < budget_ms : i < scenarios;
       ++i) {
    const uint64_t scenario_seed = base_seed + static_cast<uint64_t>(i);
    SCOPED_TRACE("scenario seed " + std::to_string(scenario_seed));
    total_matches +=
        RunScenario(scenario_seed, MatcherOptions::Mode::kDominant);
    total_matches +=
        RunScenario(scenario_seed, MatcherOptions::Mode::kExhaustive);
    ++ran;
    if (::testing::Test::HasFailure()) {
      break;  // the first failing seed is the actionable one
    }
  }
  // The suite must exercise real matches, not vacuous empty streams.
  EXPECT_GT(total_matches, 0u) << "fuzz produced no matches in " << ran
                               << " scenarios (seed " << base_seed << ")";
}

/// Mid-stream churn differential: every query gets a random live window
/// [add_at, remove_at) of the stream, applied via runtime
/// AddQuery/RemoveQuery on (a) a fused MultiMatchOperator with random
/// batch accumulation and (b) a ShardedEngine with random shard count and
/// fan-out batch. The oracle for each query is a fresh NfaMatcher over
/// exactly its window slice -- the boundary-exactness contract of runtime
/// query exchange. Returns the oracle's total match count.
size_t RunChurnScenario(uint64_t scenario_seed, MatcherOptions::Mode mode) {
  std::mt19937_64 rng(scenario_seed ^ 0x9E3779B97F4A7C15ull);
  const int num_queries = UniformInt(rng, 2, 5);
  const int num_events =
      mode == MatcherOptions::Mode::kExhaustive ? 140 : 320;

  std::vector<PatternExprPtr> exprs;
  std::vector<int> add_at(static_cast<size_t>(num_queries));
  std::vector<int> remove_at(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    exprs.push_back(RandomPattern(rng));
    add_at[static_cast<size_t>(q)] =
        UniformInt(rng, 0, 1) == 0 ? 0 : UniformInt(rng, 0, num_events - 1);
    remove_at[static_cast<size_t>(q)] =
        UniformInt(rng, 0, 1) == 0
            ? num_events
            : UniformInt(rng, add_at[static_cast<size_t>(q)], num_events);
  }
  const std::vector<Event> events = RandomEvents(rng, num_events);

  MatcherOptions options;
  options.mode = mode;
  options.max_runs = 256;

  auto compile = [&](int q) {
    Result<CompiledPattern> compiled = CompiledPattern::Compile(
        *exprs[static_cast<size_t>(q)], FuzzSchema());
    EPL_CHECK(compiled.ok()) << compiled.status();
    return std::move(compiled).value();
  };

  // Oracle: a fresh matcher fed exactly the query's window slice.
  MatchLists oracle(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    CompiledPattern pattern = compile(q);
    NfaMatcher matcher(&pattern, options);
    for (int i = add_at[static_cast<size_t>(q)];
         i < remove_at[static_cast<size_t>(q)]; ++i) {
      matcher.Process(events[static_cast<size_t>(i)],
                      &oracle[static_cast<size_t>(q)]);
    }
  }

  auto record_into = [](MatchLists* lists, int q) {
    return [lists, q](const Detection& detection) {
      PatternMatch match;
      match.state_times = detection.pose_times;
      (*lists)[static_cast<size_t>(q)].push_back(std::move(match));
    };
  };

  // Leg A: one fused operator, random batch accumulation, add/remove at
  // exact event boundaries.
  MatchLists fused(static_cast<size_t>(num_queries));
  {
    MultiMatchOperator op(options,
                          static_cast<size_t>(UniformInt(rng, 1, 9)));
    std::vector<int> ids(static_cast<size_t>(num_queries), -1);
    for (int i = 0; i <= num_events; ++i) {
      for (int q = 0; q < num_queries; ++q) {
        if (add_at[static_cast<size_t>(q)] == i && i < num_events) {
          MultiMatchOperator::QuerySpec spec;
          spec.output_name = "q" + std::to_string(q);
          spec.pattern = compile(q);
          spec.callback = record_into(&fused, q);
          ids[static_cast<size_t>(q)] = op.AddQuery(std::move(spec));
        }
      }
      for (int q = 0; q < num_queries; ++q) {
        if (remove_at[static_cast<size_t>(q)] == i &&
            ids[static_cast<size_t>(q)] >= 0 && i < num_events) {
          EPL_CHECK(op.RemoveQuery(ids[static_cast<size_t>(q)]).ok());
        }
      }
      if (i < num_events) {
        EPL_CHECK(op.Process(events[static_cast<size_t>(i)]).ok());
      }
    }
    EPL_CHECK(op.Close().ok());  // flush the accumulated tail
  }

  // Leg B: a sharded engine, random shard count and fan-out batch; the
  // control operations quiesce at exact event boundaries.
  MatchLists sharded(static_cast<size_t>(num_queries));
  {
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = UniformInt(rng, 1, 3);
    sharded_options.batch_size = static_cast<size_t>(UniformInt(rng, 1, 8));
    sharded_options.matcher = options;
    ShardedEngine engine(sharded_options);
    EPL_CHECK(engine.Start().ok());
    std::vector<int> ids(static_cast<size_t>(num_queries), -1);
    for (int i = 0; i <= num_events; ++i) {
      for (int q = 0; q < num_queries; ++q) {
        if (add_at[static_cast<size_t>(q)] == i && i < num_events) {
          MultiMatchOperator::QuerySpec spec;
          spec.output_name = "q" + std::to_string(q);
          spec.pattern = compile(q);
          spec.callback = record_into(&sharded, q);
          ids[static_cast<size_t>(q)] = engine.AddQuery(std::move(spec));
        }
      }
      for (int q = 0; q < num_queries; ++q) {
        if (remove_at[static_cast<size_t>(q)] == i &&
            ids[static_cast<size_t>(q)] >= 0 && i < num_events) {
          EPL_CHECK(engine.RemoveQuery(ids[static_cast<size_t>(q)]).ok());
        }
      }
      if (i < num_events) {
        EPL_CHECK(engine.Push(events[static_cast<size_t>(i)]));
      }
    }
    EPL_CHECK(engine.Stop().ok());
  }

  std::string diff;
  EXPECT_TRUE(SameMatches(oracle, fused, &diff))
      << "fused churn diverged from the per-window oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";
  EXPECT_TRUE(SameMatches(oracle, sharded, &diff))
      << "sharded churn diverged from the per-window oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";

  size_t total = 0;
  for (const std::vector<PatternMatch>& matches : oracle) {
    total += matches.size();
  }
  return total;
}

/// Feedback-topology differential: random base patterns plus a random
/// 2-3-level composite DAG over their detections (see cep/composite.h).
/// The oracle is a NAIVE TWO-PASS PER-LEVEL evaluation with independent
/// per-query NfaMatchers and hand-fed derived events; the fused operator
/// (random batch accumulation) and the sharded engine at 1 and 4 shards
/// must agree with it bit-exactly on every query's match sequence --
/// base and composite alike. Returns the oracle's total match count.
size_t RunFeedbackScenario(uint64_t scenario_seed, MatcherOptions::Mode mode) {
  std::mt19937_64 rng(scenario_seed ^ 0xC0FFEE12345678ull);
  const int num_base = UniformInt(rng, 2, 4);
  const int num_events =
      mode == MatcherOptions::Mode::kExhaustive ? 120 : 280;

  std::vector<PatternExprPtr> base_exprs;
  std::vector<double> base_tags;
  for (int q = 0; q < num_base; ++q) {
    base_exprs.push_back(RandomPattern(rng));
    base_tags.push_back(GestureTag("base_" + std::to_string(q)));
  }

  // Composite DAG: 1-2 level-1 queries over base tags, and sometimes one
  // level-2 query over any lower tag (level-2 patterns legitimately see
  // base AND level-1 derived events inside one epoch).
  auto random_composite = [&](const std::vector<double>& input_tags) {
    const int num_states = UniformInt(rng, 1, 2);
    std::vector<PatternExprPtr> poses;
    for (int s = 0; s < num_states; ++s) {
      const double tag = input_tags[static_cast<size_t>(UniformInt(
          rng, 0, static_cast<int>(input_tags.size()) - 1))];
      poses.push_back(PatternExpr::Pose(
          kDetectionStreamName,
          Expr::RangePredicate(kDetectionGestureField, tag, 0.5)));
    }
    const ConsumePolicy consume = UniformInt(rng, 0, 3) < 3
                                      ? ConsumePolicy::kAll
                                      : ConsumePolicy::kNone;
    std::optional<Duration> within;
    if (num_states > 1 && UniformInt(rng, 0, 1) == 0) {
      within = DurationFromMillis(Uniform(rng, 200.0, 5000.0));
    }
    return PatternExpr::Sequence(std::move(poses), within, WithinMode::kSpan,
                                 SelectPolicy::kFirst, consume);
  };

  const int num_l1 = UniformInt(rng, 1, 2);
  const int num_l2 = UniformInt(rng, 0, 1);
  struct CompositeSpec {
    int level = 1;
    double tag = 0;
    PatternExprPtr expr;
  };
  std::vector<CompositeSpec> composites;
  std::vector<double> l1_tags;
  for (int q = 0; q < num_l1; ++q) {
    CompositeSpec spec;
    spec.level = 1;
    spec.tag = GestureTag("l1_" + std::to_string(q));
    spec.expr = random_composite(base_tags);
    l1_tags.push_back(spec.tag);
    composites.push_back(std::move(spec));
  }
  std::vector<double> lower_tags = base_tags;
  lower_tags.insert(lower_tags.end(), l1_tags.begin(), l1_tags.end());
  for (int q = 0; q < num_l2; ++q) {
    CompositeSpec spec;
    spec.level = 2;
    spec.tag = GestureTag("l2_" + std::to_string(q));
    spec.expr = random_composite(lower_tags);
    composites.push_back(std::move(spec));
  }
  const int total_queries = num_base + static_cast<int>(composites.size());
  const std::vector<Event> events = RandomEvents(rng, num_events);

  MatcherOptions options;
  options.mode = mode;
  options.max_runs = 256;

  auto compile_base = [&](int q) {
    Result<CompiledPattern> compiled = CompiledPattern::Compile(
        *base_exprs[static_cast<size_t>(q)], FuzzSchema());
    EPL_CHECK(compiled.ok()) << compiled.status();
    return std::move(compiled).value();
  };
  auto compile_composite = [&](int c) {
    Result<CompiledPattern> compiled = CompiledPattern::Compile(
        *composites[static_cast<size_t>(c)].expr, DetectionSchema());
    EPL_CHECK(compiled.ok()) << compiled.status();
    return std::move(compiled).value();
  };

  // 1. Oracle: per-event epochs, evaluated naively level by level with
  // independent matchers. Base detections of one event become derived
  // events; each composite level consumes every derived event visible
  // when the level starts and spills its own detections to the next.
  MatchLists oracle(static_cast<size_t>(total_queries));
  {
    std::vector<CompiledPattern> base_patterns;
    std::vector<CompiledPattern> comp_patterns;
    for (int q = 0; q < num_base; ++q) {
      base_patterns.push_back(compile_base(q));
    }
    for (size_t c = 0; c < composites.size(); ++c) {
      comp_patterns.push_back(compile_composite(static_cast<int>(c)));
    }
    std::vector<std::unique_ptr<NfaMatcher>> base_matchers, comp_matchers;
    for (int q = 0; q < num_base; ++q) {
      base_matchers.push_back(std::make_unique<NfaMatcher>(
          &base_patterns[static_cast<size_t>(q)], options));
    }
    for (size_t c = 0; c < composites.size(); ++c) {
      comp_matchers.push_back(
          std::make_unique<NfaMatcher>(&comp_patterns[c], options));
    }
    auto derived = [](double tag, TimePoint time, const PatternMatch& match) {
      Detection detection;
      detection.time = time;
      detection.pose_times = match.state_times;
      return MakeDerivedEvent(tag, 0.0, detection);
    };
    std::vector<Event> epoch;
    std::vector<Event> spill;
    std::vector<PatternMatch> tmp;
    for (const Event& event : events) {
      epoch.clear();
      for (int q = 0; q < num_base; ++q) {
        tmp.clear();
        base_matchers[static_cast<size_t>(q)]->Process(event, &tmp);
        for (PatternMatch& match : tmp) {
          epoch.push_back(derived(base_tags[static_cast<size_t>(q)],
                                  event.timestamp, match));
          oracle[static_cast<size_t>(q)].push_back(std::move(match));
        }
      }
      if (epoch.empty()) {
        continue;  // the runner skips empty epochs; exact, see composite.h
      }
      for (int level = 1; level <= 2; ++level) {
        const size_t visible = epoch.size();
        spill.clear();
        for (size_t i = 0; i < visible; ++i) {
          for (size_t c = 0; c < composites.size(); ++c) {
            if (composites[c].level != level) {
              continue;
            }
            tmp.clear();
            comp_matchers[c]->Process(epoch[i], &tmp);
            for (PatternMatch& match : tmp) {
              spill.push_back(
                  derived(composites[c].tag, epoch[i].timestamp, match));
              oracle[static_cast<size_t>(num_base) + c].push_back(
                  std::move(match));
            }
          }
        }
        epoch.insert(epoch.end(), std::make_move_iterator(spill.begin()),
                     std::make_move_iterator(spill.end()));
      }
    }
  }

  auto record_into = [](MatchLists* lists, int q) {
    return [lists, q](const Detection& detection) {
      PatternMatch match;
      match.state_times = detection.pose_times;
      (*lists)[static_cast<size_t>(q)].push_back(std::move(match));
    };
  };
  auto add_queries = [&](auto&& add_base, auto&& add_composite) {
    for (int q = 0; q < num_base; ++q) {
      MultiMatchOperator::QuerySpec spec;
      spec.output_name = "b" + std::to_string(q);
      spec.pattern = compile_base(q);
      spec.tag = base_tags[static_cast<size_t>(q)];
      add_base(std::move(spec), q);
    }
    for (size_t c = 0; c < composites.size(); ++c) {
      MultiMatchOperator::QuerySpec spec;
      spec.output_name = "c" + std::to_string(c);
      spec.pattern = compile_composite(static_cast<int>(c));
      spec.level = composites[c].level;
      spec.tag = composites[c].tag;
      add_composite(std::move(spec), num_base + static_cast<int>(c));
    }
  };

  // 2. Fused operator with random batch accumulation.
  MatchLists fused(static_cast<size_t>(total_queries));
  {
    MultiMatchOperator op(options,
                          static_cast<size_t>(UniformInt(rng, 1, 8)));
    auto add = [&](MultiMatchOperator::QuerySpec spec, int q) {
      spec.callback = record_into(&fused, q);
      op.AddQuery(std::move(spec));
    };
    add_queries(add, add);
    for (const Event& event : events) {
      EPL_CHECK(op.Process(event).ok());
    }
    EPL_CHECK(op.Close().ok());
  }

  // 3/4. Sharded engine at 1 and 4 shards: base inputs span shards, the
  // composite runner is driven from the ordered delivery merge.
  auto run_sharded = [&](int num_shards) {
    MatchLists lists(static_cast<size_t>(total_queries));
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = num_shards;
    sharded_options.batch_size = static_cast<size_t>(UniformInt(rng, 1, 8));
    sharded_options.matcher = options;
    ShardedEngine engine(sharded_options);
    EPL_CHECK(engine.Start().ok());
    auto add = [&](MultiMatchOperator::QuerySpec spec, int q) {
      spec.callback = record_into(&lists, q);
      engine.AddQuery(std::move(spec));
    };
    add_queries(add, add);
    for (const Event& event : events) {
      EPL_CHECK(engine.Push(event));
    }
    EPL_CHECK(engine.Stop().ok());
    return lists;
  };
  const MatchLists sharded1 = run_sharded(1);
  const MatchLists sharded4 = run_sharded(4);

  std::string diff;
  EXPECT_TRUE(SameMatches(oracle, fused, &diff))
      << "fused feedback diverged from the two-pass oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";
  EXPECT_TRUE(SameMatches(oracle, sharded1, &diff))
      << "sharded(1) feedback diverged from the two-pass oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";
  EXPECT_TRUE(SameMatches(oracle, sharded4, &diff))
      << "sharded(4) feedback diverged from the two-pass oracle (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";

  size_t total = 0;
  for (const std::vector<PatternMatch>& matches : oracle) {
    total += matches.size();
  }
  return total;
}

TEST(DifferentialFuzzTest, FeedbackTopologyAgreesWithTwoPassOracle) {
  const uint64_t base_seed = EnvSeed();
  const int64_t budget_ms = EnvTimeBudgetMs();
  const int scenarios = EnvScenarios();
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  size_t total_matches = 0;
  size_t composite_matches = 0;
  int ran = 0;
  for (int i = 0; budget_ms > 0 ? elapsed_ms() < budget_ms : i < scenarios;
       ++i) {
    const uint64_t scenario_seed = base_seed + static_cast<uint64_t>(i);
    SCOPED_TRACE("scenario seed " + std::to_string(scenario_seed));
    total_matches +=
        RunFeedbackScenario(scenario_seed, MatcherOptions::Mode::kDominant);
    composite_matches +=
        RunFeedbackScenario(scenario_seed, MatcherOptions::Mode::kExhaustive);
    ++ran;
    if (::testing::Test::HasFailure()) {
      break;  // the first failing seed is the actionable one
    }
  }
  EXPECT_GT(total_matches + composite_matches, 0u)
      << "feedback fuzz produced no matches in " << ran << " scenarios (seed "
      << base_seed << ")";
}

// Dispatch differential: the same seeds run with the SIMD layer pinned to
// the scalar table and then pinned to AVX2 (when this machine has it).
// RunScenario already asserts flat and batched against the NfaMatcher
// oracle, and the oracle never touches the bank or its kernels -- so both
// dispatch modes agreeing with the one kernel-independent oracle proves
// the detection streams are bit-identical across dispatches.
TEST(DifferentialFuzzTest, ScalarAndAvx2DispatchAreBitIdentical) {
  const uint64_t base_seed = EnvSeed();
  const int scenarios = std::max(1, EnvScenarios() / 2);

  std::vector<simd::Dispatch> dispatches = {simd::Dispatch::kScalar};
  if (simd::Avx2Available()) {
    dispatches.push_back(simd::Dispatch::kAvx2);
  }
  size_t total_matches = 0;
  for (simd::Dispatch dispatch : dispatches) {
    simd::SetDispatchForTest(dispatch);
    for (int i = 0; i < scenarios; ++i) {
      const uint64_t scenario_seed = base_seed + static_cast<uint64_t>(i);
      SCOPED_TRACE("scenario seed " + std::to_string(scenario_seed) +
                   " dispatch " +
                   (dispatch == simd::Dispatch::kAvx2 ? "avx2" : "scalar"));
      total_matches +=
          RunScenario(scenario_seed, MatcherOptions::Mode::kDominant);
      if (::testing::Test::HasFailure()) {
        break;
      }
    }
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
  simd::SetDispatchForTest(std::nullopt);
  EXPECT_GT(total_matches, 0u)
      << "dispatch fuzz produced no matches (seed " << base_seed << ")";
}

/// Interest-routing differential: a random multi-session workload --
/// session-gated base queries (plus sometimes an unscoped one, which
/// keeps its shard wildcard-interested), a 2-level composite ladder,
/// query churn, and a mid-stream Resize. The reference leg is the fused
/// operator (itself validated against oracles by the other scenarios);
/// the broadcast sharded engine and the interest-routed engine at 1 and
/// 4 shards must agree with it bit-identically. A final mutation leg
/// flips one true interest bit and must visibly lose that session's
/// matches, proving the equality checks have teeth. Returns the fused
/// leg's total match count.
size_t RunRoutedScenario(uint64_t scenario_seed, MatcherOptions::Mode mode) {
  std::mt19937_64 rng(scenario_seed ^ 0xF407B17E50C1A1ull);
  static const stream::Schema* routed_schema = new stream::Schema(
      std::vector<std::string>{"a", "b", "c", "session"});
  constexpr int kSessionField = 3;
  const int num_sessions = UniformInt(rng, 2, 4);
  const int num_events =
      mode == MatcherOptions::Mode::kExhaustive ? 140 : 320;

  struct BaseQuery {
    PatternExprPtr expr;
    int session = -1;  // -1: unscoped (wildcard interest)
    double tag = 0;
    int add_at = 0;
    int remove_at = 0;
  };
  std::vector<BaseQuery> bases;
  for (int k = 0; k < num_sessions; ++k) {
    const int per_session = UniformInt(rng, 1, 2);
    for (int q = 0; q < per_session; ++q) {
      BaseQuery base;
      base.expr = RandomPattern(rng);
      base.session = k;
      bases.push_back(std::move(base));
    }
  }
  if (UniformInt(rng, 0, 1) == 0) {
    BaseQuery base;
    base.expr = RandomPattern(rng);
    bases.push_back(std::move(base));  // unscoped: events reach its shard
  }
  const int num_base = static_cast<int>(bases.size());
  std::vector<double> base_tags;
  for (int q = 0; q < num_base; ++q) {
    bases[static_cast<size_t>(q)].tag = GestureTag("rb_" + std::to_string(q));
    base_tags.push_back(bases[static_cast<size_t>(q)].tag);
    // Churn window: half the queries live the whole stream, the rest get
    // random [add_at, remove_at) -- every add/remove rebuilds the
    // interest index mid-stream.
    bases[static_cast<size_t>(q)].add_at =
        UniformInt(rng, 0, 1) == 0 ? 0 : UniformInt(rng, 0, num_events - 1);
    bases[static_cast<size_t>(q)].remove_at =
        UniformInt(rng, 0, 1) == 0
            ? num_events
            : UniformInt(rng, bases[static_cast<size_t>(q)].add_at,
                         num_events);
  }

  // 2-level composite ladder over the base tags, live the whole stream:
  // detections re-enter as derived events regardless of which shard (or
  // sub-batch) produced them.
  struct CompositeSpec {
    int level = 1;
    double tag = 0;
    PatternExprPtr expr;
  };
  auto random_composite = [&](const std::vector<double>& input_tags) {
    const int num_states = UniformInt(rng, 1, 2);
    std::vector<PatternExprPtr> poses;
    for (int s = 0; s < num_states; ++s) {
      const double tag = input_tags[static_cast<size_t>(UniformInt(
          rng, 0, static_cast<int>(input_tags.size()) - 1))];
      poses.push_back(PatternExpr::Pose(
          kDetectionStreamName,
          Expr::RangePredicate(kDetectionGestureField, tag, 0.5)));
    }
    return PatternExpr::Sequence(std::move(poses), std::nullopt,
                                 WithinMode::kSpan);
  };
  std::vector<CompositeSpec> composites;
  {
    CompositeSpec l1;
    l1.level = 1;
    l1.tag = GestureTag("rl1");
    l1.expr = random_composite(base_tags);
    composites.push_back(std::move(l1));
    if (UniformInt(rng, 0, 1) == 0) {
      std::vector<double> lower = base_tags;
      lower.push_back(GestureTag("rl1"));
      CompositeSpec l2;
      l2.level = 2;
      l2.tag = GestureTag("rl2");
      l2.expr = random_composite(lower);
      composites.push_back(std::move(l2));
    }
  }
  const int total_queries = num_base + static_cast<int>(composites.size());

  // Events: the fuzz stream plus a trailing session id. Mostly ids with
  // resident queries; occasionally an orphan session nobody hosts (the
  // interest-miss path) and, for session 0, a -0.0 spelling (RoutingKey
  // canonicalizes signed zero).
  std::vector<Event> events = RandomEvents(rng, num_events);
  for (Event& event : events) {
    double session;
    if (UniformInt(rng, 0, 49) == 0) {
      session = static_cast<double>(num_sessions);  // orphan
    } else {
      session = static_cast<double>(UniformInt(rng, 0, num_sessions - 1));
      if (session == 0.0 && UniformInt(rng, 0, 19) == 0) {
        session = -0.0;
      }
    }
    event.values.push_back(session);
  }

  // Mid-stream resizes, applied at the same event boundaries in every
  // sharded leg.
  const int resize1_at = UniformInt(rng, 1, num_events - 1);
  const int resize1_to = UniformInt(rng, 1, 4);
  const int resize2_at = UniformInt(rng, resize1_at, num_events);
  const int resize2_to = UniformInt(rng, 1, 4);

  MatcherOptions options;
  options.mode = mode;
  options.max_runs = 256;

  std::vector<std::shared_ptr<const CompiledPattern>> gates;
  for (int k = 0; k < num_sessions; ++k) {
    Result<CompiledPattern> gate = CompiledPattern::Compile(
        *PatternExpr::Pose("fuzz",
                           Expr::RangePredicate(
                               "session", static_cast<double>(k), 0.5)),
        *routed_schema);
    EPL_CHECK(gate.ok()) << gate.status();
    gates.push_back(
        std::make_shared<const CompiledPattern>(std::move(gate).value()));
  }
  auto build_spec = [&](int q) {
    MultiMatchOperator::QuerySpec spec;
    if (q < num_base) {
      const BaseQuery& base = bases[static_cast<size_t>(q)];
      spec.output_name = "rb" + std::to_string(q);
      Result<CompiledPattern> compiled =
          CompiledPattern::Compile(*base.expr, *routed_schema);
      EPL_CHECK(compiled.ok()) << compiled.status();
      spec.pattern = std::move(compiled).value();
      spec.tag = base.tag;
      if (base.session >= 0) {
        spec.gate = gates[static_cast<size_t>(base.session)];
        spec.session_tag = static_cast<double>(base.session);
        spec.session_scoped = true;
      }
    } else {
      const CompositeSpec& composite =
          composites[static_cast<size_t>(q - num_base)];
      spec.output_name = "rc" + std::to_string(q - num_base);
      Result<CompiledPattern> compiled =
          CompiledPattern::Compile(*composite.expr, DetectionSchema());
      EPL_CHECK(compiled.ok()) << compiled.status();
      spec.pattern = std::move(compiled).value();
      spec.level = composite.level;
      spec.tag = composite.tag;
    }
    return spec;
  };
  auto add_at = [&](int q) {
    return q < num_base ? bases[static_cast<size_t>(q)].add_at : 0;
  };
  auto remove_at = [&](int q) {
    return q < num_base ? bases[static_cast<size_t>(q)].remove_at
                        : num_events;
  };
  auto record_into = [](MatchLists* lists, int q) {
    return [lists, q](const Detection& detection) {
      PatternMatch match;
      match.state_times = detection.pose_times;
      (*lists)[static_cast<size_t>(q)].push_back(std::move(match));
    };
  };

  // Per-leg batch sizes drawn up front so leg internals cannot skew the
  // shared rng sequence.
  const size_t fused_batch = static_cast<size_t>(UniformInt(rng, 1, 8));
  const size_t broadcast_batch = static_cast<size_t>(UniformInt(rng, 1, 8));
  const int broadcast_shards = UniformInt(rng, 1, 4);
  const size_t routed_batch = static_cast<size_t>(UniformInt(rng, 1, 8));
  const size_t mutation_batch = static_cast<size_t>(UniformInt(rng, 1, 8));

  // Reference leg: the fused operator with the same churn schedule
  // (resizes are sharded-only and must be transparent).
  MatchLists fused(static_cast<size_t>(total_queries));
  {
    MultiMatchOperator op(options, fused_batch);
    std::vector<int> ids(static_cast<size_t>(total_queries), -1);
    for (int i = 0; i <= num_events; ++i) {
      for (int q = 0; q < total_queries; ++q) {
        if (add_at(q) == i && i < num_events) {
          MultiMatchOperator::QuerySpec spec = build_spec(q);
          spec.callback = record_into(&fused, q);
          ids[static_cast<size_t>(q)] = op.AddQuery(std::move(spec));
        }
      }
      for (int q = 0; q < total_queries; ++q) {
        if (remove_at(q) == i && ids[static_cast<size_t>(q)] >= 0 &&
            i < num_events) {
          EPL_CHECK(op.RemoveQuery(ids[static_cast<size_t>(q)]).ok());
        }
      }
      if (i < num_events) {
        EPL_CHECK(op.Process(events[static_cast<size_t>(i)]).ok());
      }
    }
    EPL_CHECK(op.Close().ok());
  }

  auto run_sharded = [&](int num_shards, bool routed, size_t batch) {
    MatchLists lists(static_cast<size_t>(total_queries));
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = num_shards;
    sharded_options.batch_size = batch;
    sharded_options.matcher = options;
    if (routed) {
      sharded_options.routing_field = kSessionField;
      sharded_options.placement = ShardPlacement::kSessionAffinity;
    }
    ShardedEngine engine(sharded_options);
    EPL_CHECK(engine.Start().ok());
    std::vector<int> ids(static_cast<size_t>(total_queries), -1);
    for (int i = 0; i <= num_events; ++i) {
      if (i == resize1_at) {
        EPL_CHECK(engine.Resize(resize1_to).ok());
      }
      if (i == resize2_at && i < num_events) {
        EPL_CHECK(engine.Resize(resize2_to).ok());
      }
      for (int q = 0; q < total_queries; ++q) {
        if (add_at(q) == i && i < num_events) {
          MultiMatchOperator::QuerySpec spec = build_spec(q);
          spec.callback = record_into(&lists, q);
          ids[static_cast<size_t>(q)] = engine.AddQuery(std::move(spec));
        }
      }
      for (int q = 0; q < total_queries; ++q) {
        if (remove_at(q) == i && ids[static_cast<size_t>(q)] >= 0 &&
            i < num_events) {
          EPL_CHECK(engine.RemoveQuery(ids[static_cast<size_t>(q)]).ok());
        }
      }
      if (i < num_events) {
        EPL_CHECK(engine.Push(events[static_cast<size_t>(i)]));
      }
    }
    EPL_CHECK(engine.Stop().ok());
    return lists;
  };
  const MatchLists broadcast =
      run_sharded(broadcast_shards, false, broadcast_batch);
  const MatchLists routed1 = run_sharded(1, true, routed_batch);
  const MatchLists routed4 = run_sharded(4, true, routed_batch);

  std::string diff;
  EXPECT_TRUE(SameMatches(fused, broadcast, &diff))
      << "broadcast sharded diverged from fused (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";
  EXPECT_TRUE(SameMatches(fused, routed1, &diff))
      << "routed sharded(1) diverged from fused (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";
  EXPECT_TRUE(SameMatches(fused, routed4, &diff))
      << "routed sharded(4) diverged from fused (" << diff
      << "); reproduce with EPL_FUZZ_SEED=" << scenario_seed
      << " EPL_FUZZ_SCENARIOS=1";

  // Mutation leg: scoped bases only (an unscoped co-resident would keep
  // its shard wildcard-interested and mask the flip), full windows, no
  // churn or resize (both rebuild the interest index and would undo the
  // flip). One wrong interest bit must erase the victim's matches.
  auto run_mutation = [&](int flip_victim) {
    MatchLists lists(static_cast<size_t>(num_base));
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = 4;
    sharded_options.batch_size = mutation_batch;
    sharded_options.matcher = options;
    sharded_options.routing_field = kSessionField;
    sharded_options.placement = ShardPlacement::kSessionAffinity;
    ShardedEngine engine(sharded_options);
    std::vector<int> ids(static_cast<size_t>(num_base), -1);
    for (int q = 0; q < num_base; ++q) {
      if (bases[static_cast<size_t>(q)].session < 0) {
        continue;
      }
      MultiMatchOperator::QuerySpec spec = build_spec(q);
      spec.level = 0;
      spec.callback = record_into(&lists, q);
      ids[static_cast<size_t>(q)] = engine.AddQuery(std::move(spec));
    }
    if (flip_victim >= 0) {
      engine.TestOnlyFlipInterestBit(
          static_cast<double>(bases[static_cast<size_t>(flip_victim)].session),
          engine.shard_of(ids[static_cast<size_t>(flip_victim)]));
    }
    EPL_CHECK(engine.Start().ok());
    for (const Event& event : events) {
      EPL_CHECK(engine.Push(event));
    }
    EPL_CHECK(engine.Stop().ok());
    return lists;
  };
  const MatchLists intact = run_mutation(-1);
  int victim = -1;
  for (int q = 0; q < num_base; ++q) {
    if (bases[static_cast<size_t>(q)].session >= 0 &&
        !intact[static_cast<size_t>(q)].empty()) {
      victim = q;
      break;
    }
  }
  if (victim >= 0) {
    const MatchLists mutated = run_mutation(victim);
    EXPECT_TRUE(mutated[static_cast<size_t>(victim)].empty())
        << "flipping the interest bit of session "
        << bases[static_cast<size_t>(victim)].session
        << " did not starve query " << victim
        << "; reproduce with EPL_FUZZ_SEED=" << scenario_seed
        << " EPL_FUZZ_SCENARIOS=1";
  }

  size_t total = 0;
  for (const std::vector<PatternMatch>& matches : fused) {
    total += matches.size();
  }
  return total;
}

TEST(DifferentialFuzzTest, RoutedShardingAgreesWithBroadcastAndFused) {
  const uint64_t base_seed = EnvSeed();
  const int64_t budget_ms = EnvTimeBudgetMs();
  const int scenarios = EnvScenarios();
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  size_t total_matches = 0;
  int ran = 0;
  for (int i = 0; budget_ms > 0 ? elapsed_ms() < budget_ms : i < scenarios;
       ++i) {
    const uint64_t scenario_seed = base_seed + static_cast<uint64_t>(i);
    SCOPED_TRACE("scenario seed " + std::to_string(scenario_seed));
    total_matches +=
        RunRoutedScenario(scenario_seed, MatcherOptions::Mode::kDominant);
    total_matches +=
        RunRoutedScenario(scenario_seed, MatcherOptions::Mode::kExhaustive);
    ++ran;
    if (::testing::Test::HasFailure()) {
      break;  // the first failing seed is the actionable one
    }
  }
  EXPECT_GT(total_matches, 0u) << "routed fuzz produced no matches in " << ran
                               << " scenarios (seed " << base_seed << ")";
}

TEST(DifferentialFuzzTest, ChurnAndShardedAgreeWithOracle) {
  const uint64_t base_seed = EnvSeed();
  const int64_t budget_ms = EnvTimeBudgetMs();
  const int scenarios = EnvScenarios();
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  size_t total_matches = 0;
  int ran = 0;
  for (int i = 0; budget_ms > 0 ? elapsed_ms() < budget_ms : i < scenarios;
       ++i) {
    const uint64_t scenario_seed = base_seed + static_cast<uint64_t>(i);
    SCOPED_TRACE("scenario seed " + std::to_string(scenario_seed));
    total_matches +=
        RunChurnScenario(scenario_seed, MatcherOptions::Mode::kDominant);
    total_matches +=
        RunChurnScenario(scenario_seed, MatcherOptions::Mode::kExhaustive);
    ++ran;
    if (::testing::Test::HasFailure()) {
      break;  // the first failing seed is the actionable one
    }
  }
  EXPECT_GT(total_matches, 0u) << "churn fuzz produced no matches in " << ran
                               << " scenarios (seed " << base_seed << ")";
}

}  // namespace
}  // namespace epl::cep
