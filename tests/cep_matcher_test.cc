#include <set>

#include <gtest/gtest.h>

#include "cep/match_operator.h"
#include "cep/matcher.h"
#include "common/rng.h"
#include "stream/operators.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using stream::Schema;

Schema VSchema() { return Schema({"v"}); }

Event At(TimePoint ms, double v) { return Event(ms * kMillisecond, {v}); }

// Pattern over field v: poses at centers with width 0.5.
PatternExprPtr ChainPattern(std::vector<double> centers,
                            std::optional<Duration> within,
                            WithinMode mode = WithinMode::kGap,
                            SelectPolicy select = SelectPolicy::kFirst,
                            ConsumePolicy consume = ConsumePolicy::kAll) {
  std::vector<PatternExprPtr> children;
  for (double center : centers) {
    children.push_back(
        PatternExpr::Pose("s", Expr::RangePredicate("v", center, 0.5)));
  }
  if (children.size() == 1) {
    return std::move(children[0]);
  }
  return PatternExpr::Sequence(std::move(children), within, mode, select,
                               consume);
}

CompiledPattern Compile(const PatternExprPtr& pattern) {
  Result<CompiledPattern> compiled =
      CompiledPattern::Compile(*pattern, VSchema());
  EPL_CHECK(compiled.ok()) << compiled.status();
  return std::move(compiled).value();
}

std::vector<PatternMatch> Feed(NfaMatcher& matcher,
                               const std::vector<Event>& events) {
  std::vector<PatternMatch> matches;
  for (const Event& event : events) {
    matcher.Process(event, &matches);
  }
  return matches;
}

TEST(MatcherTest, DetectsSimpleSequence) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2, 3}, kSecond));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(100, 2), At(200, 3)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].state_times,
            (std::vector<TimePoint>{0, 100 * kMillisecond,
                                    200 * kMillisecond}));
}

TEST(MatcherTest, SkipsNonMatchingEvents) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, kSecond));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches = Feed(
      matcher, {At(0, 1), At(100, 9), At(200, 9), At(300, 2)});
  ASSERT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, OutOfOrderPosesDoNotMatch) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2, 3}, kSecond));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 3), At(100, 2), At(200, 1)});
  EXPECT_TRUE(matches.empty());
}

TEST(MatcherTest, GapConstraintEnforced) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, kSecond));
  NfaMatcher matcher(&pattern);
  // Second pose arrives 1.5 s after the first: too late.
  std::vector<PatternMatch> matches = Feed(matcher, {At(0, 1), At(1500, 2)});
  EXPECT_TRUE(matches.empty());
  // Within the budget it matches.
  matches = Feed(matcher, {At(2000, 1), At(2900, 2)});
  ASSERT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, GapMeasuredBetweenConsecutivePoses) {
  // Three poses, 1 s budget per step: total may exceed 1 s.
  CompiledPattern pattern = Compile(ChainPattern({1, 2, 3}, kSecond));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(900, 2), At(1800, 3)});
  ASSERT_EQ(matches.size(), 1u);  // each gap 0.9 s <= 1 s
}

TEST(MatcherTest, SpanConstraintEnforced) {
  CompiledPattern pattern =
      Compile(ChainPattern({1, 2, 3}, kSecond, WithinMode::kSpan));
  NfaMatcher matcher(&pattern);
  // Each gap is 0.6 s but the total span is 1.2 s > 1 s.
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(600, 2), At(1200, 3)});
  EXPECT_TRUE(matches.empty());
  matches = Feed(matcher, {At(2000, 1), At(2400, 2), At(2900, 3)});
  ASSERT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, LateRestartRescuesMatch) {
  // The dominance-critical scenario: an early partial run would expire, a
  // later start must take over.
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, kSecond));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches = Feed(
      matcher,
      {At(0, 1), At(800, 1), At(1500, 2)});  // 1500-0 > 1s, 1500-800 <= 1s
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].state_times[0], 800 * kMillisecond);
}

TEST(MatcherTest, SameEventCannotFillTwoStates) {
  // Poses 1 and 2 both match v=1.5 (width 0.5 around 1 and 2); a single
  // event must not complete the sequence alone.
  CompiledPattern pattern = Compile(ChainPattern({1.2, 1.8}, kSecond));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches = Feed(matcher, {At(0, 1.5)});
  EXPECT_TRUE(matches.empty());
  // A second event completes it.
  matches = Feed(matcher, {At(100, 1.5)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].state_times,
            (std::vector<TimePoint>{0, 100 * kMillisecond}));
}

TEST(MatcherTest, ConsumeAllClearsPartialRuns) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, std::nullopt));
  NfaMatcher matcher(&pattern);
  // Two starts, one completion; consume-all wipes the second partial run.
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(100, 1), At(200, 2)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matcher.active_run_count(), 0u);
  // Next completion needs a fresh start.
  matches = Feed(matcher, {At(300, 2)});
  EXPECT_TRUE(matches.empty());
}

TEST(MatcherTest, ConsumeNoneKeepsRunsAlive) {
  CompiledPattern pattern = Compile(
      ChainPattern({1, 2}, std::nullopt, WithinMode::kGap,
                   SelectPolicy::kFirst, ConsumePolicy::kNone));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(100, 2), At(200, 2)});
  // The run from t=0 completes at t=100; with consume none the state-0 run
  // survives and completes again at t=200.
  EXPECT_EQ(matches.size(), 2u);
}

TEST(MatcherTest, SingleStatePattern) {
  CompiledPattern pattern = Compile(ChainPattern({5}, std::nullopt));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 5), At(100, 4), At(200, 5)});
  EXPECT_EQ(matches.size(), 2u);
}

TEST(MatcherTest, ResetDiscardsPartialRuns) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, std::nullopt));
  NfaMatcher matcher(&pattern);
  std::vector<PatternMatch> matches = Feed(matcher, {At(0, 1)});
  EXPECT_EQ(matcher.active_run_count(), 1u);
  matcher.Reset();
  EXPECT_EQ(matcher.active_run_count(), 0u);
  matches = Feed(matcher, {At(100, 2)});
  EXPECT_TRUE(matches.empty());
}

TEST(MatcherTest, StatsTrackEventsAndEvaluations) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, std::nullopt));
  NfaMatcher matcher(&pattern);
  Feed(matcher, {At(0, 9), At(100, 9)});
  EXPECT_EQ(matcher.stats().events, 2u);
  // Only predicate 0 is evaluated while no run is active.
  EXPECT_EQ(matcher.stats().predicate_evaluations, 2u);
  EXPECT_EQ(matcher.stats().matches, 0u);
}

TEST(MatcherTest, SharedPredicateMemoizationFires) {
  // Two states with structurally identical predicates share one compiled
  // program and one per-event memoization slot.
  CompiledPattern pattern =
      Compile(ChainPattern({1, 1}, std::nullopt, WithinMode::kGap,
                           SelectPolicy::kFirst, ConsumePolicy::kNone));
  EXPECT_EQ(pattern.num_states(), 2);
  EXPECT_EQ(pattern.num_distinct_predicates(), 1);
  NfaMatcher matcher(&pattern);
  Feed(matcher, {At(0, 1), At(100, 1)});
  // Event 1 evaluates the predicate once (state-0 seed). Event 2 evaluates
  // it once for the state-1 advance; the subsequent state-0 seed then hits
  // the per-event memo instead of re-running the program.
  EXPECT_EQ(matcher.stats().predicate_evaluations, 2u);
  EXPECT_EQ(matcher.stats().predicate_cache_hits, 1u);
}

TEST(MatcherTest, DistinctPredicatesKeepSeparateSlots) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, std::nullopt));
  EXPECT_EQ(pattern.num_distinct_predicates(), 2);
  NfaMatcher matcher(&pattern);
  Feed(matcher, {At(0, 1), At(100, 2)});
  EXPECT_EQ(matcher.stats().predicate_cache_hits, 0u);
}

TEST(MatcherTest, NearIdenticalPredicatesAreNotMerged) {
  // Centers differing below the 6-decimal ToString print precision keep
  // separate slots (the dedup key is exact).
  CompiledPattern pattern =
      Compile(ChainPattern({1.0, 1.0 + 1e-9}, std::nullopt));
  EXPECT_EQ(pattern.num_distinct_predicates(), 2);
}

TEST(MatcherTest, ExhaustiveSelectAllFindsAllCombinations) {
  CompiledPattern pattern = Compile(
      ChainPattern({1, 2}, std::nullopt, WithinMode::kGap, SelectPolicy::kAll,
                   ConsumePolicy::kNone));
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  NfaMatcher matcher(&pattern, options);
  // Starts at t=0 and t=100; ends at t=200 and t=300: 2x2 combinations.
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(100, 1), At(200, 2), At(300, 2)});
  EXPECT_EQ(matches.size(), 4u);
}

TEST(MatcherTest, ExhaustiveConsumeAllStopsAfterFirst) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, std::nullopt));
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  NfaMatcher matcher(&pattern, options);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(100, 1), At(200, 2), At(300, 2)});
  // First completion at t=200 consumes everything; t=300 has no partner.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].state_times.back(), 200 * kMillisecond);
}

TEST(MatcherTest, ExhaustiveRunCapDropsOldest) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, std::nullopt));
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  options.max_runs = 4;
  NfaMatcher matcher(&pattern, options);
  for (int i = 0; i < 10; ++i) {
    std::vector<PatternMatch> matches;
    matcher.Process(At(i * 100, 1), &matches);
  }
  EXPECT_LE(matcher.active_run_count(), 4u);
  EXPECT_GT(matcher.stats().dropped_runs, 0u);
}

TEST(MatcherTest, ExhaustiveRunCapDropOrderIsOldestFirst) {
  // Cap 2 with select all / consume none: three seeds overflow by one, and
  // the LONGEST-RESIDENT run (t=0) is the one evicted.
  CompiledPattern pattern = Compile(
      ChainPattern({1, 2}, std::nullopt, WithinMode::kGap, SelectPolicy::kAll,
                   ConsumePolicy::kNone));
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  options.max_runs = 2;
  NfaMatcher matcher(&pattern, options);
  std::vector<PatternMatch> matches =
      Feed(matcher, {At(0, 1), At(100, 1), At(200, 1)});
  EXPECT_TRUE(matches.empty());
  EXPECT_EQ(matcher.active_run_count(), 2u);
  EXPECT_EQ(matcher.stats().dropped_runs, 1u);

  // Both survivors complete, in residency order; no {0, 300} match.
  matches = Feed(matcher, {At(300, 2)});
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].state_times,
            (std::vector<TimePoint>{100 * kMillisecond, 300 * kMillisecond}));
  EXPECT_EQ(matches[1].state_times,
            (std::vector<TimePoint>{200 * kMillisecond, 300 * kMillisecond}));
}

TEST(MatcherTest, ExhaustiveRunCapAccountsEveryDrop) {
  CompiledPattern pattern = Compile(
      ChainPattern({1, 2}, std::nullopt, WithinMode::kGap, SelectPolicy::kAll,
                   ConsumePolicy::kNone));
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  options.max_runs = 3;
  NfaMatcher matcher(&pattern, options);
  std::vector<Event> seeds;
  for (int i = 0; i < 8; ++i) {
    seeds.push_back(At(i * 100, 1));
  }
  Feed(matcher, seeds);
  // 8 seeds into a cap of 3: exactly 5 drops, one per overflowing event,
  // and the cap bounds the recorded peak (trim precedes the peak sample).
  EXPECT_EQ(matcher.stats().dropped_runs, 5u);
  EXPECT_EQ(matcher.active_run_count(), 3u);
  EXPECT_EQ(matcher.stats().peak_runs, 3u);
}

TEST(MatcherTest, ExhaustiveRunCapDroppedRunWouldHaveCompleted) {
  // Cap 1: the t=100 seed evicts the t=0 run even though the next event
  // completes both; the evicted combination is silently lost, which is the
  // documented lossy-overflow contract (dropped_runs records it).
  CompiledPattern pattern = Compile(
      ChainPattern({1, 2}, std::nullopt, WithinMode::kGap, SelectPolicy::kAll,
                   ConsumePolicy::kNone));
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  options.max_runs = 1;
  NfaMatcher matcher(&pattern, options);
  std::vector<PatternMatch> matches = Feed(matcher, {At(0, 1), At(100, 1)});
  EXPECT_EQ(matcher.stats().dropped_runs, 1u);
  EXPECT_EQ(matcher.active_run_count(), 1u);
  matches = Feed(matcher, {At(200, 2)});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].state_times,
            (std::vector<TimePoint>{100 * kMillisecond, 200 * kMillisecond}));
}

// Property test: dominant mode detects a completion at exactly the same
// events as the exhaustive oracle (consume none so runs are never cleared).
class DominanceEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DominanceEquivalenceTest, CompletionEventsAgree) {
  Rng rng(500 + static_cast<uint64_t>(GetParam()));
  int num_states = static_cast<int>(rng.UniformInt(2, 4));
  std::vector<double> centers;
  for (int i = 0; i < num_states; ++i) {
    centers.push_back(static_cast<double>(rng.UniformInt(1, 3)));
  }
  bool use_within = rng.Bernoulli(0.7);
  WithinMode mode =
      rng.Bernoulli(0.5) ? WithinMode::kGap : WithinMode::kSpan;
  std::optional<Duration> within =
      use_within ? std::optional<Duration>(
                       rng.UniformInt(200, 900) * kMillisecond)
                 : std::nullopt;

  CompiledPattern dominant_pattern =
      Compile(ChainPattern(centers, within, mode, SelectPolicy::kFirst,
                           ConsumePolicy::kNone));
  CompiledPattern exhaustive_pattern =
      Compile(ChainPattern(centers, within, mode, SelectPolicy::kAll,
                           ConsumePolicy::kNone));

  NfaMatcher dominant(&dominant_pattern);
  MatcherOptions exhaustive_options;
  exhaustive_options.mode = MatcherOptions::Mode::kExhaustive;
  NfaMatcher exhaustive(&exhaustive_pattern, exhaustive_options);

  std::set<TimePoint> dominant_completions;
  std::set<TimePoint> exhaustive_completions;
  TimePoint t = 0;
  for (int i = 0; i < 40; ++i) {
    t += rng.UniformInt(50, 250) * kMillisecond;
    Event event(t, {static_cast<double>(rng.UniformInt(1, 3))});
    std::vector<PatternMatch> dominant_matches;
    dominant.Process(event, &dominant_matches);
    for (const PatternMatch& match : dominant_matches) {
      dominant_completions.insert(match.end_time());
    }
    std::vector<PatternMatch> exhaustive_matches;
    exhaustive.Process(event, &exhaustive_matches);
    for (const PatternMatch& match : exhaustive_matches) {
      exhaustive_completions.insert(match.end_time());
    }
  }
  EXPECT_EQ(exhaustive.stats().dropped_runs, 0u);
  EXPECT_EQ(dominant_completions, exhaustive_completions)
      << "states=" << num_states
      << " within=" << (within ? FormatDuration(*within) : "none")
      << " mode=" << (mode == WithinMode::kGap ? "gap" : "span");
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, DominanceEquivalenceTest,
                         ::testing::Range(0, 40));

// Stronger property: random *nested* sequence trees with independently
// chosen within/gap/span annotations at every level (the shape the query
// generator emits) must also agree between dominant and exhaustive modes.
class NestedDominanceEquivalenceTest : public ::testing::TestWithParam<int> {
};

PatternExprPtr RandomNestedPattern(Rng& rng, int* poses_left,
                                   SelectPolicy select,
                                   ConsumePolicy consume, int depth) {
  if (*poses_left <= 1 || depth >= 3 || rng.Bernoulli(0.3)) {
    *poses_left -= 1;
    double center = static_cast<double>(rng.UniformInt(1, 3));
    return PatternExpr::Pose("s", Expr::RangePredicate("v", center, 0.5));
  }
  int arity = static_cast<int>(rng.UniformInt(2, std::min(*poses_left, 3)));
  std::vector<PatternExprPtr> children;
  for (int i = 0; i < arity && *poses_left > 0; ++i) {
    children.push_back(RandomNestedPattern(rng, poses_left, select, consume,
                                           depth + 1));
  }
  std::optional<Duration> within;
  if (rng.Bernoulli(0.8)) {
    within = rng.UniformInt(300, 1200) * kMillisecond;
  }
  WithinMode mode =
      rng.Bernoulli(0.5) ? WithinMode::kGap : WithinMode::kSpan;
  return PatternExpr::Sequence(std::move(children), within, mode, select,
                               consume);
}

TEST_P(NestedDominanceEquivalenceTest, CompletionEventsAgree) {
  Rng rng(7000 + static_cast<uint64_t>(GetParam()));
  int poses = static_cast<int>(rng.UniformInt(3, 6));
  Rng tree_rng = rng.Fork();

  auto build = [&](SelectPolicy select, ConsumePolicy consume) {
    Rng local = tree_rng;  // identical tree for both modes
    int budget = poses;
    PatternExprPtr pattern =
        RandomNestedPattern(local, &budget, select, consume, 0);
    // Ensure the root is a sequence so policies apply.
    if (pattern->kind() == PatternKind::kPose) {
      std::vector<PatternExprPtr> children;
      children.push_back(std::move(pattern));
      children.push_back(
          PatternExpr::Pose("s", Expr::RangePredicate("v", 2, 0.5)));
      pattern = PatternExpr::Sequence(std::move(children), kSecond,
                                      WithinMode::kGap, select, consume);
    }
    return Compile(pattern);
  };
  CompiledPattern dominant_pattern =
      build(SelectPolicy::kFirst, ConsumePolicy::kNone);
  CompiledPattern exhaustive_pattern =
      build(SelectPolicy::kAll, ConsumePolicy::kNone);
  ASSERT_EQ(dominant_pattern.num_states(),
            exhaustive_pattern.num_states());

  NfaMatcher dominant(&dominant_pattern);
  MatcherOptions options;
  options.mode = MatcherOptions::Mode::kExhaustive;
  NfaMatcher exhaustive(&exhaustive_pattern, options);

  std::set<TimePoint> dominant_completions;
  std::set<TimePoint> exhaustive_completions;
  TimePoint t = 0;
  for (int i = 0; i < 45; ++i) {
    t += rng.UniformInt(40, 220) * kMillisecond;
    Event event(t, {static_cast<double>(rng.UniformInt(1, 3))});
    std::vector<PatternMatch> matches;
    dominant.Process(event, &matches);
    for (const PatternMatch& match : matches) {
      dominant_completions.insert(match.end_time());
    }
    matches.clear();
    exhaustive.Process(event, &matches);
    for (const PatternMatch& match : matches) {
      exhaustive_completions.insert(match.end_time());
    }
  }
  EXPECT_EQ(exhaustive.stats().dropped_runs, 0u);
  EXPECT_EQ(dominant_completions, exhaustive_completions)
      << dominant_pattern.ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomNestedPatterns,
                         NestedDominanceEquivalenceTest,
                         ::testing::Range(0, 40));

TEST(MatchOperatorTest, InvokesCallbackWithDetection) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, kSecond));
  std::vector<Detection> detections;
  MatchOperator op(
      "swipe", std::move(pattern),
      [&detections](const Detection& d) { detections.push_back(d); });
  EPL_ASSERT_OK(op.Process(At(0, 1)));
  EPL_ASSERT_OK(op.Process(At(500, 2)));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].name, "swipe");
  EXPECT_EQ(detections[0].time, 500 * kMillisecond);
  EXPECT_EQ(detections[0].pose_times.size(), 2u);
  EXPECT_EQ(detections[0].duration(), 500 * kMillisecond);
}

TEST(MatchOperatorTest, ComputesMeasuresOnCompletingEvent) {
  CompiledPattern pattern = Compile(ChainPattern({1, 2}, kSecond));
  ExprPtr measure = Expr::Binary(BinaryOp::kMul, Expr::Field("v"),
                                 Expr::Constant(10));
  EPL_ASSERT_OK(measure->Bind(VSchema()));
  EPL_ASSERT_OK_AND_ASSIGN(ExprProgram program,
                           ExprProgram::Compile(*measure));
  std::vector<ExprProgram> measures;
  measures.push_back(std::move(program));
  std::vector<Detection> detections;
  MatchOperator op(
      "g", std::move(pattern),
      [&detections](const Detection& d) { detections.push_back(d); },
      std::move(measures));
  EPL_ASSERT_OK(op.Process(At(0, 1)));
  EPL_ASSERT_OK(op.Process(At(100, 2)));
  ASSERT_EQ(detections.size(), 1u);
  ASSERT_EQ(detections[0].measures.size(), 1u);
  EXPECT_DOUBLE_EQ(detections[0].measures[0], 20.0);
}

TEST(MatchOperatorTest, ForwardsEventsDownstream) {
  CompiledPattern pattern = Compile(ChainPattern({1}, std::nullopt));
  MatchOperator op("g", std::move(pattern), nullptr);
  stream::CollectSink sink;
  op.AddDownstream(&sink);
  EPL_ASSERT_OK(op.Process(At(0, 1)));
  EPL_ASSERT_OK(op.Process(At(100, 7)));
  EXPECT_EQ(sink.events().size(), 2u);
}

}  // namespace
}  // namespace epl::cep
