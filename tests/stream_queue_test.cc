#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stream/bounded_queue.h"

namespace epl::stream {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  for (int i = 0; i < 5; ++i) {
    std::optional<int> value = queue.Pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  queue.Pop();
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, PopBatchDrainsInFifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  // Appends without clearing; takes at most what is buffered.
  EXPECT_EQ(queue.PopBatch(&batch, 100), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(BoundedQueueTest, PopBatchClampsToMaxItems) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  // max_items = 1 degenerates to Pop; the remainder stays queued.
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 1), 1u);
  EXPECT_EQ(batch, (std::vector<int>{0}));
  EXPECT_EQ(queue.size(), 5u);
  EXPECT_EQ(queue.PopBatch(&batch, 5), 5u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(BoundedQueueTest, PopBatchBlocksUntilItemsArrive) {
  BoundedQueue<int> queue(4);
  std::vector<int> batch;
  std::atomic<bool> drained{false};
  std::thread consumer([&queue, &batch, &drained] {
    // Blocks on the empty queue, then takes whatever is buffered when the
    // producer wakes it (at least the first item, never more than pushed).
    EXPECT_GE(queue.PopBatch(&batch, 8), 1u);
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drained.load());
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  consumer.join();
  EXPECT_TRUE(drained.load());
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front(), 1);
}

TEST(BoundedQueueTest, PopBatchCloseWhileWaitingReturnsZero) {
  BoundedQueue<int> queue(4);
  std::vector<int> batch;
  size_t taken = 99;
  std::thread consumer(
      [&queue, &batch, &taken] { taken = queue.PopBatch(&batch, 8); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
  EXPECT_EQ(taken, 0u);
  EXPECT_TRUE(batch.empty());
  // Closed stays closed: later batch pops keep returning zero.
  EXPECT_EQ(queue.PopBatch(&batch, 4), 0u);
}

TEST(BoundedQueueTest, PopBatchReturnsZeroWhenClosedAndDrained) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  queue.Close();
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 8), 1u);
  EXPECT_EQ(queue.PopBatch(&batch, 8), 0u);
}

TEST(BoundedQueueTest, PopBatchUnblocksFullProducers) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  std::thread producer([&queue] { EXPECT_TRUE(queue.Push(3)); });
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 2), 2u);
  producer.join();
  EXPECT_EQ(queue.PopBatch(&batch, 2), 1u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2, 3}));
}

TEST(BoundedQueueTest, CloseUnblocksConsumer) {
  BoundedQueue<int> queue(4);
  std::optional<int> result = std::make_optional(0);
  std::thread consumer([&queue, &result] { result = queue.Pop(); });
  queue.Close();
  consumer.join();
  EXPECT_FALSE(result.has_value());
}

TEST(BoundedQueueTest, CloseDrainsRemainingItems) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(42));
  queue.Close();
  EXPECT_FALSE(queue.Push(43));
  std::optional<int> value = queue.Pop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 42);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, PushBlocksUntilSpace) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&queue, &pushed] {
    queue.Push(2);
    pushed.store(true);
  });
  // Producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  queue.Pop();
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedQueueTest, MultiProducerMultiConsumerConservesItems) {
  BoundedQueue<int> queue(64);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;

  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &sum, &consumed] {
      while (true) {
        std::optional<int> value = queue.Pop();
        if (!value.has_value()) {
          return;
        }
        sum.fetch_add(*value);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  queue.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  long long expected = 0;
  for (int i = 0; i < total; ++i) {
    expected += i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(BoundedQueueTest, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> queue(4);
  EXPECT_TRUE(queue.Push(std::make_unique<int>(7)));
  std::optional<std::unique_ptr<int>> value = queue.Pop();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(**value, 7);
}

}  // namespace
}  // namespace epl::stream
