// Gesture-store robustness: LoadStore over a store with a truncated or
// bit-flipped .gesture file must never crash, must still deploy every
// parseable gesture, and must return an error identifying the offending
// file. The corruption matrix truncates one record at every line boundary
// and flips one byte in every line.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cep_workload_test_util.h"
#include "gesturedb/serialization.h"
#include "gesturedb/store.h"
#include "test_util.h"
#include "workflow/gesture_runtime.h"

namespace epl::workflow {
namespace {

using cep::testing::TrainedDefinitions;

/// The store's on-disk path of one gesture record.
std::string RecordPath(const gesturedb::GestureStore& store,
                       const std::string& name) {
  return store.directory() + "/" + name + ".gesture";
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Runs LoadStore against `store` and returns (result, number deployed).
std::pair<Result<int>, size_t> TryLoad(const gesturedb::GestureStore& store) {
  stream::StreamEngine engine;
  EPL_CHECK(engine.RegisterStream("kinect", kinect::KinectSchema()).ok());
  GestureRuntime runtime(&engine);
  Result<int> loaded =
      runtime.LoadStore(store, [](const cep::Detection&) {});
  return {std::move(loaded), runtime.num_deployed()};
}

class GestureDbCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    definitions_ = TrainedDefinitions(3);
    EPL_ASSERT_OK_AND_ASSIGN(store_, gesturedb::GestureStore::Open(
                                         dir_.path() + "/store"));
    for (const core::GestureDefinition& definition : definitions_) {
      EPL_ASSERT_OK(store_->Put(definition));
    }
    // The middle name in sort order: corruption must not shadow records
    // loaded before or after it.
    victim_ = definitions_[1].name;
    EPL_ASSERT_OK_AND_ASSIGN(
        good_text_,
        durability::DefaultFileSystem()->ReadFile(
            RecordPath(*store_, victim_)));
  }

  epl::testing::ScopedTempDir dir_;
  std::vector<core::GestureDefinition> definitions_;
  Result<gesturedb::GestureStore> store_{NotFoundError("not opened")};
  std::string victim_;
  std::string good_text_;
};

TEST_F(GestureDbCorruptionTest, CleanStoreLoadsEverything) {
  auto [loaded, deployed] = TryLoad(*store_);
  EPL_ASSERT_OK(loaded.status());
  EXPECT_EQ(*loaded, 3);
  EXPECT_EQ(deployed, 3u);
}

TEST_F(GestureDbCorruptionTest, TruncationAtEveryLineBoundary) {
  // Field boundaries in the text format are line boundaries; truncate the
  // victim record after every one of them (plus the empty file).
  std::vector<size_t> cuts = {0};
  for (size_t i = 0; i < good_text_.size(); ++i) {
    if (good_text_[i] == '\n') cuts.push_back(i + 1);
  }
  for (size_t cut : cuts) {
    if (cut == good_text_.size()) continue;  // the full file is valid
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    WriteFile(RecordPath(*store_, victim_), good_text_.substr(0, cut));
    auto [loaded, deployed] = TryLoad(*store_);
    // Both good gestures deploy regardless of the bad record...
    EXPECT_EQ(deployed, 2u);
    // ...and the error identifies the offending file.
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find(victim_ + ".gesture"),
              std::string::npos)
        << loaded.status();
  }
}

TEST_F(GestureDbCorruptionTest, SingleByteFlipPerLine) {
  // One flipped byte somewhere in every line of the record. A flip may
  // happen to produce a DIFFERENT valid record (e.g. inside a float
  // digit); the invariants are: never crash, never lose the other
  // records, and when the record does fail, name the file.
  size_t line_start = 0;
  for (size_t i = 0; i <= good_text_.size(); ++i) {
    if (i != good_text_.size() && good_text_[i] != '\n') continue;
    if (i > line_start) {
      const size_t offset = line_start + (i - line_start) / 2;
      SCOPED_TRACE("flip at offset " + std::to_string(offset));
      std::string flipped = good_text_;
      flipped[offset] = static_cast<char>(flipped[offset] ^ 0x11);
      WriteFile(RecordPath(*store_, victim_), flipped);
      auto [loaded, deployed] = TryLoad(*store_);
      EXPECT_GE(deployed, 2u);
      if (!loaded.ok()) {
        EXPECT_EQ(deployed, 2u);
        EXPECT_NE(loaded.status().message().find(victim_ + ".gesture"),
                  std::string::npos)
            << loaded.status();
      } else {
        EXPECT_EQ(deployed, 3u);
      }
    }
    line_start = i + 1;
  }
}

TEST_F(GestureDbCorruptionTest, GarbageFileDoesNotAbortTheSweep) {
  WriteFile(RecordPath(*store_, victim_),
            std::string("\x00\xff\x7f garbage \x01", 13));
  auto [loaded, deployed] = TryLoad(*store_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(deployed, 2u);
}

}  // namespace
}  // namespace epl::workflow
