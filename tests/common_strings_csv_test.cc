#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "test_util.h"

namespace epl {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a;b;;c", ';'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ';'), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ';'), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("SwIpE_Right"), "swipe_right");
  EXPECT_TRUE(StartsWith("kinect_t", "kinect"));
  EXPECT_FALSE(StartsWith("kin", "kinect"));
  EXPECT_TRUE(EndsWith("trace.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "trace.csv"));
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  EPL_ASSERT_OK_AND_ASSIGN(double v, ParseDouble(" -38.80 "));
  EXPECT_DOUBLE_EQ(v, -38.80);
  EPL_ASSERT_OK_AND_ASSIGN(double w, ParseDouble("1e3"));
  EXPECT_DOUBLE_EQ(w, 1000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringUtilTest, ParseInt64) {
  EPL_ASSERT_OK_AND_ASSIGN(int64_t v, ParseInt64("-42"));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringUtilTest, FormatNumberTrimsZeros) {
  EXPECT_EQ(FormatNumber(120.0), "120");
  EXPECT_EQ(FormatNumber(1.5), "1.5");
  EXPECT_EQ(FormatNumber(-0.25), "-0.25");
  EXPECT_EQ(FormatNumber(0.0), "0");
}

TEST(TimeUtilTest, Conversions) {
  EXPECT_EQ(DurationFromSeconds(1.5), 1500000);
  EXPECT_EQ(DurationFromMillis(33.0), 33000);
  EXPECT_DOUBLE_EQ(ToSeconds(2500000), 2.5);
  EXPECT_DOUBLE_EQ(ToMillis(1500), 1.5);
}

TEST(TimeUtilTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(1500000), "1.500 s");
  EXPECT_EQ(FormatDuration(33300), "33.300 ms");
  EXPECT_EQ(FormatDuration(42), "42 us");
}

TEST(CsvTest, ParsesHeaderAndRows) {
  std::string text = "a;b;c\n1;2;3\n4.5;5.5;6.5\n";
  EPL_ASSERT_OK_AND_ASSIGN(CsvTable table, ParseCsv(text));
  EXPECT_EQ(table.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][2], 6.5);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  std::string text = "# comment\na;b\n\n1;2\n# another\n3;4\n";
  EPL_ASSERT_OK_AND_ASSIGN(CsvTable table, ParseCsv(text));
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  Result<CsvTable> r = ParseCsv("a;b\n1;2\n1;2;3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(CsvTest, RejectsNonNumericCell) {
  Result<CsvTable> r = ParseCsv("a;b\n1;x\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsMissingHeader) {
  Result<CsvTable> r = ParseCsv("");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(CsvTest, WriteReadRoundTrip) {
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{1.25, -3.5}, {0.0, 42.0}};
  std::string text = WriteCsv(table);
  EPL_ASSERT_OK_AND_ASSIGN(CsvTable parsed, ParseCsv(text));
  EXPECT_EQ(parsed.header, table.header);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.rows[0][0], 1.25);
  EXPECT_DOUBLE_EQ(parsed.rows[1][1], 42.0);
}

TEST(CsvTest, FileRoundTrip) {
  testing::ScopedTempDir dir;
  std::string path = dir.path() + "/table.csv";
  CsvTable table;
  table.header = {"a"};
  table.rows = {{7.0}};
  EPL_ASSERT_OK(WriteCsvFile(path, table));
  EPL_ASSERT_OK_AND_ASSIGN(CsvTable parsed, ReadCsvFile(path));
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.rows[0][0], 7.0);
}

TEST(CsvTest, ReadMissingFileFails) {
  Result<CsvTable> r = ReadCsvFile("/nonexistent/path/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, ParsesPaperTraceFormat) {
  // Verbatim prefix of the Fig. 1 sensor trace.
  std::string text =
      "torsoX;torsoY;torsoZ;rHandX;rHandY;rHandZ\n"
      "45.21;166.36;1961.27;-38.80;238.82;1822.28\n"
      "45.52;165.01;1961.72;-34.19;242.18;1809.85\n";
  EPL_ASSERT_OK_AND_ASSIGN(CsvTable table, ParseCsv(text));
  EXPECT_EQ(table.header[3], "rHandX");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][3], -38.80);
}

}  // namespace
}  // namespace epl
