// Focused tests for the compiled expression VM, especially the
// short-circuit jump lowering of `and` / `or`.

#include <cmath>

#include <gtest/gtest.h>

#include "cep/expr_program.h"
#include "query/parser.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using stream::Schema;

ExprProgram CompileText(const std::string& text, const Schema& schema) {
  Result<ExprPtr> expr = query::ParseExpression(text);
  EPL_CHECK(expr.ok()) << expr.status();
  EPL_CHECK((*expr)->Bind(schema).ok());
  Result<ExprProgram> program = ExprProgram::Compile(**expr);
  EPL_CHECK(program.ok()) << program.status();
  return std::move(program).value();
}

Schema AbcSchema() { return Schema({"a", "b", "c"}); }

Event E(double a, double b = 0, double c = 0) { return Event(0, {a, b, c}); }

TEST(ExprProgramJumpTest, AndShortCircuits) {
  // 1/a > 0 would divide by zero when a == 0; the guard must prevent the
  // rhs from mattering (no trap either way, but the value must be exact).
  ExprProgram program = CompileText("a != 0 and 1 / a > 0", AbcSchema());
  EXPECT_DOUBLE_EQ(program.Eval(E(2)), 1.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(0)), 0.0);   // short-circuit: false
  EXPECT_DOUBLE_EQ(program.Eval(E(-2)), 0.0);  // rhs false
}

TEST(ExprProgramJumpTest, OrShortCircuits) {
  ExprProgram program = CompileText("a > 0 or b > 0", AbcSchema());
  EXPECT_DOUBLE_EQ(program.Eval(E(1, -1)), 1.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(-1, 1)), 1.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(-1, -1)), 0.0);
}

TEST(ExprProgramJumpTest, TruthyNonOneValuesNormalize) {
  // `a and b` where a=5, b=7: result must be exactly 1.0, not 7.0.
  ExprProgram and_program = CompileText("a and b", AbcSchema());
  EXPECT_DOUBLE_EQ(and_program.Eval(E(5, 7)), 1.0);
  EXPECT_DOUBLE_EQ(and_program.Eval(E(5, 0)), 0.0);
  EXPECT_DOUBLE_EQ(and_program.Eval(E(0, 7)), 0.0);
  // `a or b` with truthy lhs 5: result 1.0.
  ExprProgram or_program = CompileText("a or b", AbcSchema());
  EXPECT_DOUBLE_EQ(or_program.Eval(E(5, 0)), 1.0);
  EXPECT_DOUBLE_EQ(or_program.Eval(E(0, 9)), 1.0);
  EXPECT_DOUBLE_EQ(or_program.Eval(E(0, 0)), 0.0);
}

TEST(ExprProgramJumpTest, LongConjunctionChains) {
  ExprProgram program = CompileText(
      "a > 0 and a > 1 and a > 2 and a > 3 and a > 4 and a > 5",
      AbcSchema());
  EXPECT_DOUBLE_EQ(program.Eval(E(6)), 1.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(3)), 0.0);   // fails mid-chain
  EXPECT_DOUBLE_EQ(program.Eval(E(-1)), 0.0);  // fails at first conjunct
}

TEST(ExprProgramJumpTest, MixedAndOrNesting) {
  ExprProgram program = CompileText(
      "(a > 0 and b > 0) or (a < 0 and c > 0)", AbcSchema());
  EXPECT_DOUBLE_EQ(program.Eval(E(1, 1, 0)), 1.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(-1, 0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(1, 0, 1)), 0.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(0, 1, 1)), 0.0);
}

TEST(ExprProgramJumpTest, NotOverLogical) {
  ExprProgram program = CompileText("not (a > 0 and b > 0)", AbcSchema());
  EXPECT_DOUBLE_EQ(program.Eval(E(1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(1, -1)), 1.0);
}

TEST(ExprProgramJumpTest, NanIsTruthy) {
  // NaN != 0.0, so NaN is truthy in both evaluators (documented).
  Schema schema({"a", "b", "c"});
  Result<ExprPtr> expr = query::ParseExpression("a and b");
  EPL_ASSERT_OK((*expr)->Bind(schema));
  EPL_ASSERT_OK_AND_ASSIGN(ExprProgram program,
                           ExprProgram::Compile(**expr));
  double nan = std::nan("");
  Event event(0, {nan, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(program.Eval(event), (*expr)->Eval(event));
  EXPECT_DOUBLE_EQ(program.Eval(event), 1.0);
}

TEST(ExprProgramJumpTest, LogicalInsideArithmetic) {
  // (a > 0 and b > 0) * 10 + 1 — the normalized bool feeds arithmetic.
  ExprProgram program =
      CompileText("(a > 0 and b > 0) * 10 + 1", AbcSchema());
  EXPECT_DOUBLE_EQ(program.Eval(E(1, 1)), 11.0);
  EXPECT_DOUBLE_EQ(program.Eval(E(1, -1)), 1.0);
}

TEST(ExprProgramJumpTest, PaperPredicateAgainstTreeWalk) {
  Schema schema({"rHand_x", "rHand_y", "rHand_z", "torso_x", "torso_y",
                 "torso_z"});
  Result<ExprPtr> expr = query::ParseExpression(
      "abs(rHand_x - torso_x - 400) < 50 and "
      "abs(rHand_y - torso_y - 150) < 50 and "
      "abs(rHand_z - torso_z + 420) < 50");
  EPL_ASSERT_OK((*expr)->Bind(schema));
  EPL_ASSERT_OK_AND_ASSIGN(ExprProgram program,
                           ExprProgram::Compile(**expr));
  Event inside(0, {420.0, 160.0, -400.0, 10.0, 20.0, 30.0});
  Event outside(0, {900.0, 160.0, -400.0, 10.0, 20.0, 30.0});
  EXPECT_EQ(program.EvalBool(inside), (*expr)->EvalBool(inside));
  EXPECT_TRUE(program.EvalBool(inside));
  EXPECT_EQ(program.EvalBool(outside), (*expr)->EvalBool(outside));
  EXPECT_FALSE(program.EvalBool(outside));
}

TEST(ExprProgramJumpTest, DepthLimitEnforced) {
  // Build a deeply right-nested arithmetic chain exceeding the VM stack.
  ExprPtr expr = Expr::Constant(1.0);
  for (int i = 0; i < ExprProgram::kMaxStackDepth + 10; ++i) {
    expr = Expr::Binary(BinaryOp::kAdd, Expr::Constant(1.0),
                        std::move(expr));
  }
  stream::Schema empty;
  EPL_ASSERT_OK(expr->Bind(empty));
  Result<ExprProgram> program = ExprProgram::Compile(*expr);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExprProgramJumpTest, LeftDeepChainsStayShallow) {
  // Left-deep `and` chains (what Expr::And builds) need constant stack.
  std::vector<ExprPtr> terms;
  for (int i = 0; i < 200; ++i) {
    terms.push_back(Expr::RangePredicate("a", i, 1000.0));
  }
  ExprPtr expr = Expr::And(std::move(terms));
  EPL_ASSERT_OK(expr->Bind(AbcSchema()));
  EPL_ASSERT_OK_AND_ASSIGN(ExprProgram program, ExprProgram::Compile(*expr));
  EXPECT_LE(program.max_stack_depth(), 4);
  EXPECT_DOUBLE_EQ(program.Eval(E(50)), 1.0);
}

}  // namespace
}  // namespace epl::cep
