// Cross-module integration tests: the full production flow the README
// advertises — learn, persist, reload, deploy, exchange at runtime — plus
// randomized round-trip properties that cross module boundaries.

#include <gtest/gtest.h>

#include "apps/binding.h"
#include "common/rng.h"
#include "core/learner.h"
#include "gesturedb/serialization.h"
#include "gesturedb/store.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "kinect/trace_io.h"
#include "optimize/overlap.h"
#include "query/compiler.h"
#include "query/unparser.h"
#include "stream/runner.h"
#include "test_util.h"
#include "transform/transform.h"
#include "transform/view.h"

namespace epl {
namespace {

using kinect::GestureShape;
using kinect::GestureShapes;
using kinect::JointId;
using kinect::SkeletonFrame;
using kinect::UserProfile;

core::GestureDefinition Train(const GestureShape& shape, int samples,
                              uint64_t seed) {
  core::GestureLearner learner(shape.name, shape.InvolvedJoints());
  for (int i = 0; i < samples; ++i) {
    std::vector<SkeletonFrame> frames = kinect::SynthesizeSample(
        UserProfile(), shape, seed + static_cast<uint64_t>(i));
    for (SkeletonFrame& frame : frames) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    EPL_CHECK(learner.AddSample(frames).ok());
  }
  Result<core::GestureDefinition> definition = learner.Learn();
  EPL_CHECK(definition.ok());
  return std::move(definition).value();
}

TEST(IntegrationTest, LearnPersistReloadDetect) {
  // Learn -> store -> reload from disk -> generate query text -> parse ->
  // deploy -> detect. Exercises every serialization boundary.
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(gesturedb::GestureStore store,
                           gesturedb::GestureStore::Open(dir.path()));
  GestureShape shape = GestureShapes::RaiseHand();
  EPL_ASSERT_OK(store.Put(Train(shape, 3, 100)));

  EPL_ASSERT_OK_AND_ASSIGN(core::GestureDefinition loaded,
                           store.Get("raise_hand"));
  EPL_ASSERT_OK_AND_ASSIGN(std::string query_text,
                           core::GenerateQueryText(loaded));
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery parsed,
                           query::ParseQuery(query_text));

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));
  int detections = 0;
  EPL_ASSERT_OK(query::DeployQuery(&engine, parsed,
                                   [&detections](const cep::Detection&) {
                                     ++detections;
                                   })
                    .status());
  UserProfile user;
  user.height_mm = 1500;
  kinect::SessionBuilder session(user, 200);
  session.Idle(0.5).Perform(shape, 0.4).Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, session.frames()));
  EXPECT_EQ(detections, 1);
}

TEST(IntegrationTest, RuntimeGestureExchange) {
  // The paper's demo finale: swap the deployed gesture while the engine
  // keeps running.
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));

  int swipe_hits = 0;
  int circle_hits = 0;
  core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 3, 300);
  core::GestureDefinition circle = Train(GestureShapes::Circle(), 3, 310);

  EPL_ASSERT_OK_AND_ASSIGN(
      stream::DeploymentId swipe_id,
      core::DeployGesture(&engine, swipe, [&swipe_hits](const cep::Detection&) {
        ++swipe_hits;
      }));

  UserProfile user;
  kinect::SessionBuilder first(user, 320);
  first.Idle(0.5).Perform(GestureShapes::SwipeRight(), 0.4).Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, first.frames()));
  EXPECT_EQ(swipe_hits, 1);

  // Exchange: undeploy swipe, deploy circle.
  EPL_ASSERT_OK(engine.Undeploy(swipe_id));
  EPL_ASSERT_OK(core::DeployGesture(&engine, circle,
                                    [&circle_hits](const cep::Detection&) {
                                      ++circle_hits;
                                    })
                    .status());
  kinect::SessionBuilder second(user, 321);
  second.Idle(0.5)
      .Perform(GestureShapes::SwipeRight(), 0.4)  // no longer detected
      .Idle(0.4)
      .Perform(GestureShapes::Circle(), 0.4)
      .Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, second.frames()));
  EXPECT_EQ(swipe_hits, 1) << "undeployed gesture must stay silent";
  EXPECT_EQ(circle_hits, 1);
}

TEST(IntegrationTest, ThreadedRunnerDetectsGestures) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));
  core::GestureDefinition def = Train(GestureShapes::PushForward(), 3, 400);
  std::atomic<int> detections{0};
  EPL_ASSERT_OK(core::DeployGesture(&engine, def,
                                    [&detections](const cep::Detection&) {
                                      detections.fetch_add(1);
                                    })
                    .status());
  kinect::SessionBuilder session(UserProfile(), 410);
  session.Idle(0.5).Perform(GestureShapes::PushForward(), 0.4).Idle(0.5);

  stream::EngineRunner runner(&engine);
  EPL_ASSERT_OK(runner.Start());
  for (const SkeletonFrame& frame : session.frames()) {
    ASSERT_TRUE(runner.Enqueue("kinect", kinect::FrameToEvent(frame)));
  }
  EPL_ASSERT_OK(runner.Stop());
  EXPECT_EQ(detections.load(), 1);
}

TEST(IntegrationTest, StoredVocabularyValidatesWithoutOverlap) {
  // A store full of learned gestures passes the Sec. 3.3.3 validator.
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(gesturedb::GestureStore store,
                           gesturedb::GestureStore::Open(dir.path()));
  const char* names[] = {"swipe_right", "circle", "push_forward"};
  uint64_t seed = 500;
  for (const char* name : names) {
    EPL_ASSERT_OK_AND_ASSIGN(GestureShape shape, GestureShapes::ByName(name));
    EPL_ASSERT_OK(store.Put(Train(shape, 3, seed += 10)));
  }
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<std::string> stored, store.List());
  std::vector<core::GestureDefinition> vocabulary;
  for (const std::string& name : stored) {
    EPL_ASSERT_OK_AND_ASSIGN(core::GestureDefinition def, store.Get(name));
    vocabulary.push_back(std::move(def));
  }
  EXPECT_TRUE(optimize::ValidateVocabulary(vocabulary).empty());
}

TEST(IntegrationTest, RouterDrivesDetectionsFromEngine) {
  // Detections flow engine -> router -> application command.
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(transform::RegisterKinectTView(&engine));
  apps::GestureCommandRouter router;
  int commands = 0;
  router.Bind("hands_up", [&commands](const cep::Detection&) { ++commands; });
  core::GestureDefinition def = Train(GestureShapes::HandsUp(), 3, 600);
  EPL_ASSERT_OK(
      core::DeployGesture(&engine, def, router.AsCallback()).status());
  kinect::SessionBuilder session(UserProfile(), 610);
  session.Idle(0.5).Perform(GestureShapes::HandsUp(), 0.4).Idle(0.5);
  EPL_ASSERT_OK(kinect::PlayFrames(&engine, session.frames()));
  EXPECT_EQ(commands, 1);
  EXPECT_EQ(router.unhandled(), 0u);
}

// Randomized property: serialization round-trips arbitrary well-formed
// definitions bit-exactly through text.
class SerializationRoundTripProperty : public ::testing::TestWithParam<int> {
};

TEST_P(SerializationRoundTripProperty, RandomDefinitionsRoundTrip) {
  Rng rng(900 + static_cast<uint64_t>(GetParam()));
  core::GestureDefinition def;
  def.name = "g" + std::to_string(GetParam());
  def.sample_count = static_cast<int>(rng.UniformInt(1, 9));
  def.joints = {JointId::kRightHand};
  if (rng.Bernoulli(0.5)) {
    def.joints.push_back(JointId::kLeftHand);
  }
  int poses = static_cast<int>(rng.UniformInt(1, 6));
  for (int p = 0; p < poses; ++p) {
    core::PoseWindow pose;
    for (JointId joint : def.joints) {
      core::JointWindow window;
      window.center = Vec3(rng.Uniform(-900, 900), rng.Uniform(-900, 900),
                           rng.Uniform(-900, 900));
      window.half_width =
          Vec3(rng.Uniform(1, 300), rng.Uniform(1, 300),
               rng.Uniform(1, 300));
      // Randomly deactivate one axis (keep at least one active).
      if (rng.Bernoulli(0.3)) {
        window.active[static_cast<size_t>(rng.UniformInt(0, 2))] = false;
      }
      pose.joints[joint] = window;
    }
    pose.max_gap = p == 0 ? 0 : rng.UniformInt(1, 5) * kSecond;
    def.poses.push_back(std::move(pose));
  }
  EPL_ASSERT_OK(def.Validate());

  std::string text = gesturedb::Serialize(def);
  EPL_ASSERT_OK_AND_ASSIGN(core::GestureDefinition loaded,
                           gesturedb::Deserialize(text));
  // Serialization is canonical: serializing again yields identical text.
  EXPECT_EQ(gesturedb::Serialize(loaded), text);
  // And the generated queries agree.
  Result<std::string> original_query = core::GenerateQueryText(def);
  Result<std::string> loaded_query = core::GenerateQueryText(loaded);
  ASSERT_EQ(original_query.ok(), loaded_query.ok());
  if (original_query.ok()) {
    EXPECT_EQ(*original_query, *loaded_query);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SerializationRoundTripProperty,
                         ::testing::Range(0, 25));

// Randomized property: generated query text always re-parses and
// compiles against the kinect_t schema, for arbitrary learned gestures.
class QueryRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(QueryRoundTripProperty, GeneratedQueriesReparseAndCompile) {
  std::vector<std::string> names = GestureShapes::Names();
  const std::string& name = names[static_cast<size_t>(GetParam()) %
                                  names.size()];
  EPL_ASSERT_OK_AND_ASSIGN(GestureShape shape, GestureShapes::ByName(name));
  core::GestureDefinition def =
      Train(shape, 2 + GetParam() % 3,
            1000 + 37 * static_cast<uint64_t>(GetParam()));
  EPL_ASSERT_OK_AND_ASSIGN(std::string text, core::GenerateQueryText(def));
  EPL_ASSERT_OK_AND_ASSIGN(query::ParsedQuery parsed,
                           query::ParseQuery(text));
  EXPECT_EQ(query::FormatQuery(parsed), text);
  EPL_ASSERT_OK_AND_ASSIGN(
      query::CompiledQuery compiled,
      query::CompileQuery(parsed, transform::KinectTSchema()));
  EXPECT_EQ(compiled.pattern.num_states(),
            static_cast<int>(def.poses.size()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, QueryRoundTripProperty,
                         ::testing::Range(0, 16));

TEST(IntegrationTest, PaperTraceEndToEndViaQueryText) {
  // The E1 flow as a regression test: paper trace -> learn -> query text
  // -> parse -> deploy -> exactly one detection.
  std::string path = testing::TestDataDir() + "/fig1_swipe_right.csv";
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<stream::Event> events,
                           kinect::ReadPaperTrace(path));
  std::vector<core::SamplePoint> points;
  for (const stream::Event& event : events) {
    core::SamplePoint point;
    point.timestamp = event.timestamp;
    point.joints[JointId::kRightHand] =
        Vec3(event.values[3] - event.values[0],
             event.values[4] - event.values[1],
             event.values[5] - event.values[2]);
    points.push_back(std::move(point));
  }
  core::LearnerConfig config;
  config.sampler.threshold_pct = 0.34;
  config.source_stream = "trace";
  core::GestureLearner learner("swipe_right", {JointId::kRightHand},
                               config);
  EPL_ASSERT_OK(learner.AddSamplePoints(points));
  EPL_ASSERT_OK_AND_ASSIGN(core::GestureDefinition def, learner.Learn());
  EXPECT_EQ(def.poses.size(), 3u);  // the paper's three windows

  EPL_ASSERT_OK_AND_ASSIGN(std::string text, learner.GenerateQueryText());
  stream::StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream(
      "trace",
      stream::Schema(std::vector<std::string>{"rHand_x", "rHand_y",
                                              "rHand_z"})));
  int detections = 0;
  EPL_ASSERT_OK(query::DeployQueryText(&engine, text,
                                       [&detections](const cep::Detection&) {
                                         ++detections;
                                       })
                    .status());
  for (const stream::Event& event : events) {
    stream::Event relative(event.timestamp,
                           {event.values[3] - event.values[0],
                            event.values[4] - event.values[1],
                            event.values[5] - event.values[2]});
    EPL_ASSERT_OK(engine.Push("trace", relative));
  }
  EXPECT_EQ(detections, 1);
}

}  // namespace
}  // namespace epl
