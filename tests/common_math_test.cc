#include <cmath>

#include <gtest/gtest.h>

#include "common/mat3.h"
#include "common/rng.h"
#include "common/vec3.h"

namespace epl {
namespace {

constexpr double kTol = 1e-9;

TEST(Vec3Test, Arithmetic) {
  Vec3 a(1, 2, 3);
  Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, DotCrossNorm) {
  Vec3 a(1, 0, 0);
  Vec3 b(0, 1, 0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
  EXPECT_EQ(a.Cross(b), Vec3(0, 0, 1));
  EXPECT_EQ(b.Cross(a), Vec3(0, 0, -1));
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(Vec3(1, 1, 1).DistanceTo(Vec3(1, 1, 3)), 2.0);
}

TEST(Vec3Test, NormalizedHandlesZero) {
  EXPECT_EQ(Vec3().Normalized(), Vec3());
  Vec3 unit = Vec3(0, 3, 0).Normalized();
  EXPECT_TRUE(unit.ApproxEquals(Vec3(0, 1, 0), kTol));
}

TEST(Vec3Test, MinMaxLerp) {
  Vec3 a(1, 5, -2);
  Vec3 b(3, 2, -4);
  EXPECT_EQ(Vec3::Min(a, b), Vec3(1, 2, -4));
  EXPECT_EQ(Vec3::Max(a, b), Vec3(3, 5, -2));
  EXPECT_TRUE(Vec3::Lerp(a, b, 0.0).ApproxEquals(a, kTol));
  EXPECT_TRUE(Vec3::Lerp(a, b, 1.0).ApproxEquals(b, kTol));
  EXPECT_TRUE(Vec3::Lerp(a, b, 0.5).ApproxEquals(Vec3(2, 3.5, -3), kTol));
}

TEST(Vec3Test, IndexAccess) {
  Vec3 v(7, 8, 9);
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
  v[1] = 10;
  EXPECT_DOUBLE_EQ(v.y, 10);
  EXPECT_EQ(AxisName(0), "x");
  EXPECT_EQ(AxisName(1), "y");
  EXPECT_EQ(AxisName(2), "z");
}

TEST(Mat3Test, IdentityIsNeutral) {
  Mat3 identity;
  Vec3 v(1, 2, 3);
  EXPECT_TRUE(identity.Apply(v).ApproxEquals(v, kTol));
  EXPECT_TRUE((identity * Mat3::RotationY(0.7))
                  .ApproxEquals(Mat3::RotationY(0.7), kTol));
}

TEST(Mat3Test, RotationZQuarterTurn) {
  Mat3 rot = Mat3::RotationZ(M_PI / 2);
  EXPECT_TRUE(rot.Apply(Vec3(1, 0, 0)).ApproxEquals(Vec3(0, 1, 0), kTol));
  EXPECT_TRUE(rot.Apply(Vec3(0, 1, 0)).ApproxEquals(Vec3(-1, 0, 0), kTol));
}

TEST(Mat3Test, RotationYQuarterTurn) {
  Mat3 rot = Mat3::RotationY(M_PI / 2);
  EXPECT_TRUE(rot.Apply(Vec3(1, 0, 0)).ApproxEquals(Vec3(0, 0, -1), kTol));
  EXPECT_TRUE(rot.Apply(Vec3(0, 0, 1)).ApproxEquals(Vec3(1, 0, 0), kTol));
}

TEST(Mat3Test, RotationXQuarterTurn) {
  Mat3 rot = Mat3::RotationX(M_PI / 2);
  EXPECT_TRUE(rot.Apply(Vec3(0, 1, 0)).ApproxEquals(Vec3(0, 0, 1), kTol));
}

TEST(Mat3Test, TransposeInvertsRotation) {
  Mat3 rot = Mat3::FromYawPitchRoll(0.3, -0.5, 1.1);
  Vec3 v(10, -4, 2);
  Vec3 back = rot.Transposed().Apply(rot.Apply(v));
  EXPECT_TRUE(back.ApproxEquals(v, 1e-9));
}

TEST(Mat3Test, RotationPreservesNorm) {
  Mat3 rot = Mat3::FromYawPitchRoll(0.9, 0.2, -0.4);
  Vec3 v(3, -7, 2);
  EXPECT_NEAR(rot.Apply(v).Norm(), v.Norm(), 1e-9);
}

// Property sweep: RPY extraction must invert composition over a grid of
// angles away from gimbal lock.
class RpyRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RpyRoundTripTest, ExtractionInvertsComposition) {
  Rng rng(1234 + static_cast<uint64_t>(GetParam()));
  double yaw = rng.Uniform(-3.0, 3.0);
  double pitch = rng.Uniform(-1.4, 1.4);  // stay away from +-pi/2
  double roll = rng.Uniform(-3.0, 3.0);
  Mat3 rot = Mat3::FromYawPitchRoll(yaw, pitch, roll);
  Vec3 rpy = rot.ToRollPitchYaw();
  Mat3 rebuilt = Mat3::FromYawPitchRoll(rpy.z, rpy.y, rpy.x);
  EXPECT_TRUE(rebuilt.ApproxEquals(rot, 1e-8))
      << "yaw=" << yaw << " pitch=" << pitch << " roll=" << roll;
}

INSTANTIATE_TEST_SUITE_P(RandomAngles, RpyRoundTripTest,
                         ::testing::Range(0, 25));

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformWithinRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.1);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng fork = a.Fork();
  // The fork must not replay the parent's stream.
  Rng reference(5);
  reference.NextUint64();  // advance like the fork derivation did
  EXPECT_NE(fork.NextUint64(), reference.NextUint64());
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace epl
