#include <gtest/gtest.h>

#include "query/compiler.h"
#include "query/parser.h"
#include "query/unparser.h"
#include "stream/operators.h"
#include "test_util.h"

namespace epl::query {
namespace {

using cep::ConsumePolicy;
using cep::PatternKind;
using cep::SelectPolicy;
using cep::WithinMode;

// The verbatim Fig. 1 query from the paper.
constexpr char kPaperQuery[] = R"(
SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rHand_x - torso_x - 0) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rHand_x - torso_x - 400) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rHand_x - torso_x - 800) < 50 and
  abs(rHand_y - torso_y - 150) < 50 and
  abs(rHand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
)";

stream::Schema KinectSixFieldSchema() {
  return stream::Schema({"rHand_x", "rHand_y", "rHand_z", "torso_x",
                         "torso_y", "torso_z"});
}

TEST(ParserTest, ParsesPaperQueryStructure) {
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query, ParseQuery(kPaperQuery));
  EXPECT_EQ(query.name, "swipe_right");
  ASSERT_NE(query.pattern, nullptr);
  ASSERT_EQ(query.pattern->kind(), PatternKind::kSequence);
  // Outer sequence: [inner sequence, pose].
  ASSERT_EQ(query.pattern->children().size(), 2u);
  EXPECT_EQ(query.pattern->within(), std::optional<Duration>(kSecond));
  EXPECT_EQ(query.pattern->within_mode(), WithinMode::kGap);
  EXPECT_EQ(query.pattern->select_policy(), SelectPolicy::kFirst);
  EXPECT_EQ(query.pattern->consume_policy(), ConsumePolicy::kAll);

  const cep::PatternExpr& inner = *query.pattern->children()[0];
  ASSERT_EQ(inner.kind(), PatternKind::kSequence);
  EXPECT_EQ(inner.children().size(), 2u);
  EXPECT_EQ(inner.within(), std::optional<Duration>(kSecond));

  EXPECT_EQ(query.pattern->NumPoses(), 3);
  std::vector<const cep::PatternExpr*> poses = query.pattern->Poses();
  EXPECT_EQ(poses[0]->source(), "kinect");
  // Spot-check one predicate rendering.
  EXPECT_EQ(poses[2]->predicate().ToString(),
            "abs(rHand_x - torso_x - 800) < 50 and "
            "abs(rHand_y - torso_y - 150) < 50 and "
            "abs(rHand_z - torso_z + 120) < 50");
}

TEST(ParserTest, PaperQueryCompiles) {
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query, ParseQuery(kPaperQuery));
  EPL_ASSERT_OK_AND_ASSIGN(
      CompiledQuery compiled, CompileQuery(query, KinectSixFieldSchema()));
  EXPECT_EQ(compiled.name, "swipe_right");
  EXPECT_EQ(compiled.source_stream, "kinect");
  EXPECT_EQ(compiled.pattern.num_states(), 3);
  EXPECT_EQ(compiled.pattern.constraints().size(), 2u);
}

TEST(ParserTest, SinglePoseQuery) {
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query,
                           ParseQuery("SELECT \"g\" MATCHING s(v > 1);"));
  EXPECT_EQ(query.pattern->kind(), PatternKind::kPose);
}

TEST(ParserTest, FlatSequenceWithoutClauses) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery("SELECT \"g\" MATCHING s(a > 1) -> s(a > 2) -> s(a > 3);"));
  ASSERT_EQ(query.pattern->kind(), PatternKind::kSequence);
  EXPECT_EQ(query.pattern->children().size(), 3u);
  EXPECT_FALSE(query.pattern->within().has_value());
}

TEST(ParserTest, WithinMilliseconds) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery(
          "SELECT \"g\" MATCHING s(a > 1) -> s(a > 2) within 250 ms;"));
  EXPECT_EQ(query.pattern->within(),
            std::optional<Duration>(250 * kMillisecond));
}

TEST(ParserTest, WithinFractionalSeconds) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery(
          "SELECT \"g\" MATCHING s(a>1) -> s(a>2) within 0.5 seconds;"));
  EXPECT_EQ(query.pattern->within(),
            std::optional<Duration>(500 * kMillisecond));
}

TEST(ParserTest, WithinTotalSelectsSpanMode) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery("SELECT \"g\" MATCHING s(a>1) -> s(a>2) "
                 "within 2 seconds total;"));
  EXPECT_EQ(query.pattern->within_mode(), WithinMode::kSpan);
}

TEST(ParserTest, SelectAllConsumeNone) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery("SELECT \"g\" MATCHING s(a>1) -> s(a>2) "
                 "select all consume none;"));
  EXPECT_EQ(query.pattern->select_policy(), SelectPolicy::kAll);
  EXPECT_EQ(query.pattern->consume_policy(), ConsumePolicy::kNone);
}

TEST(ParserTest, OutputMeasures) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery("SELECT \"g\", rHand_x - torso_x, rHand_y "
                 "MATCHING kinect(rHand_x > 0);"));
  ASSERT_EQ(query.measures.size(), 2u);
  EXPECT_EQ(query.measures[0]->ToString(), "rHand_x - torso_x");
}

TEST(ParserTest, NegativeNumbersFoldIntoConstants) {
  EPL_ASSERT_OK_AND_ASSIGN(cep::ExprPtr expr, ParseExpression("-120"));
  EXPECT_EQ(expr->kind(), cep::ExprKind::kConst);
  EXPECT_DOUBLE_EQ(expr->constant_value(), -120.0);
}

TEST(ParserTest, ExpressionPrecedence) {
  EPL_ASSERT_OK_AND_ASSIGN(cep::ExprPtr expr,
                           ParseExpression("1 + 2 * 3 < 4 and 5 > 1"));
  // ((1 + (2*3)) < 4) and (5 > 1)
  EXPECT_EQ(expr->kind(), cep::ExprKind::kBinary);
  EXPECT_EQ(expr->binary_op(), cep::BinaryOp::kAnd);
  stream::Schema empty_schema;
  EPL_ASSERT_OK(expr->Bind(empty_schema));
  EXPECT_DOUBLE_EQ(expr->Eval(stream::Event(0, {})), 0.0);  // 7 < 4 false
}

TEST(ParserTest, ParenthesizedExpression) {
  EPL_ASSERT_OK_AND_ASSIGN(cep::ExprPtr expr,
                           ParseExpression("(1 + 2) * 3"));
  stream::Schema empty_schema;
  EPL_ASSERT_OK(expr->Bind(empty_schema));
  EXPECT_DOUBLE_EQ(expr->Eval(stream::Event(0, {})), 9.0);
}

TEST(ParserTest, FunctionCallsInExpressions) {
  EPL_ASSERT_OK_AND_ASSIGN(cep::ExprPtr expr,
                           ParseExpression("max(abs(-3), 2)"));
  stream::Schema empty_schema;
  EPL_ASSERT_OK(expr->Bind(empty_schema));
  EXPECT_DOUBLE_EQ(expr->Eval(stream::Event(0, {})), 3.0);
}

TEST(ParserTest, MultipleQueriesScript) {
  EPL_ASSERT_OK_AND_ASSIGN(
      std::vector<ParsedQuery> queries,
      ParseQueries("SELECT \"a\" MATCHING s(x > 1);\n"
                   "SELECT \"b\" MATCHING s(x < 1);"));
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].name, "a");
  EXPECT_EQ(queries[1].name, "b");
}

TEST(ParserTest, ErrorsCarryPositions) {
  Result<ParsedQuery> r = ParseQuery("SELECT \"g\" MATCHING ;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("parse error at 1:"),
            std::string::npos);
}

TEST(ParserTest, MissingSemicolonFails) {
  EXPECT_FALSE(ParseQuery("SELECT \"g\" MATCHING s(a > 1)").ok());
}

TEST(ParserTest, MissingNameFails) {
  EXPECT_FALSE(ParseQuery("SELECT MATCHING s(a > 1);").ok());
}

TEST(ParserTest, BadTimeUnitFails) {
  EXPECT_FALSE(
      ParseQuery("SELECT \"g\" MATCHING s(a>1) -> s(a>2) within 1 hours;")
          .ok());
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseQuery("SELECT \"g\" MATCHING s(a > 1); extra").ok());
}

TEST(ParserTest, CloneProducesIndependentCopy) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery("SELECT \"g\", a MATCHING s(a > 1) -> s(a > 2);"));
  ParsedQuery clone = query.Clone();
  EXPECT_EQ(clone.name, query.name);
  EXPECT_EQ(clone.measures.size(), 1u);
  EXPECT_EQ(FormatQueryCompact(clone), FormatQueryCompact(query));
}

TEST(UnparserTest, RoundTripPaperQuery) {
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query, ParseQuery(kPaperQuery));
  std::string formatted = FormatQuery(query);
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery reparsed, ParseQuery(formatted));
  // Idempotent fixpoint: formatting the reparsed query yields identical
  // text, so the round trip is structure-preserving.
  EXPECT_EQ(FormatQuery(reparsed), formatted);
  EXPECT_EQ(FormatQueryCompact(reparsed), FormatQueryCompact(query));
  EXPECT_EQ(reparsed.pattern->NumPoses(), 3);
}

TEST(UnparserTest, RoundTripVariants) {
  const char* queries[] = {
      "SELECT \"a\" MATCHING s(x > 1);",
      "SELECT \"b\" MATCHING s(x>1) -> s(x>2) within 300 ms;",
      "SELECT \"c\" MATCHING s(x>1) -> s(x>2) within 2 seconds total "
      "select all consume none;",
      "SELECT \"d\", x, x*2 MATCHING s(x>1) -> (s(x>2) -> s(x>3) "
      "within 1 seconds) within 1 seconds;",
      "SELECT \"e\" MATCHING s(abs(x - 400) < 50 and abs(y + 120) < 50);",
  };
  for (const char* text : queries) {
    EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query, ParseQuery(text));
    std::string formatted = FormatQuery(query);
    EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery reparsed, ParseQuery(formatted));
    EXPECT_EQ(FormatQuery(reparsed), formatted) << text;
    EXPECT_EQ(FormatQueryCompact(reparsed), FormatQueryCompact(query))
        << text;
  }
}

TEST(UnparserTest, PaperStyleLayout) {
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query, ParseQuery(kPaperQuery));
  std::string formatted = FormatQuery(query);
  EXPECT_NE(formatted.find("SELECT \"swipe_right\""), std::string::npos);
  EXPECT_NE(formatted.find("MATCHING"), std::string::npos);
  EXPECT_NE(formatted.find("abs(rHand_x - torso_x - 400) < 50 and"),
            std::string::npos);
  EXPECT_NE(formatted.find("within 1 seconds select first consume all"),
            std::string::npos);
  EXPECT_EQ(formatted.back(), '\n');
}

TEST(CompilerTest, UnknownFieldReportsError) {
  EPL_ASSERT_OK_AND_ASSIGN(ParsedQuery query,
                           ParseQuery("SELECT \"g\" MATCHING s(nope > 1);"));
  Result<CompiledQuery> compiled =
      CompileQuery(query, stream::Schema({"x"}));
  EXPECT_EQ(compiled.status().code(), StatusCode::kNotFound);
}

TEST(CompilerTest, MeasureBindFailureMentionsMeasure) {
  EPL_ASSERT_OK_AND_ASSIGN(
      ParsedQuery query,
      ParseQuery("SELECT \"g\", bad_field MATCHING s(x > 1);"));
  Result<CompiledQuery> compiled =
      CompileQuery(query, stream::Schema({"x"}));
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("output measure"),
            std::string::npos);
}

TEST(DeployTest, EndToEndDetection) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(engine.RegisterStream("s", stream::Schema({"x"})));
  std::vector<cep::Detection> detections;
  EPL_ASSERT_OK_AND_ASSIGN(
      stream::DeploymentId id,
      DeployQueryText(
          &engine,
          "SELECT \"up\", x MATCHING s(x < 1) -> s(x > 9) within 1 seconds;",
          [&detections](const cep::Detection& d) {
            detections.push_back(d);
          }));
  EPL_ASSERT_OK(engine.Push("s", stream::Event(0, {0.0})));
  EPL_ASSERT_OK(engine.Push("s", stream::Event(500 * kMillisecond, {10.0})));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].name, "up");
  ASSERT_EQ(detections[0].measures.size(), 1u);
  EXPECT_DOUBLE_EQ(detections[0].measures[0], 10.0);

  // Runtime exchange: undeploy and verify no further detections.
  EPL_ASSERT_OK(engine.Undeploy(id));
  EPL_ASSERT_OK(engine.Push("s", stream::Event(kSecond, {0.0})));
  EPL_ASSERT_OK(engine.Push("s", stream::Event(kSecond + 100, {10.0})));
  EXPECT_EQ(detections.size(), 1u);
}

TEST(DeployTest, UnknownStreamFails) {
  stream::StreamEngine engine;
  Result<stream::DeploymentId> r = DeployQueryText(
      &engine, "SELECT \"g\" MATCHING ghost(x > 1);", nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace epl::query
