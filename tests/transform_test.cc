#include <cmath>

#include <gtest/gtest.h>

#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "stream/operators.h"
#include "test_util.h"
#include "transform/rpy.h"
#include "transform/transform.h"
#include "transform/view.h"

namespace epl::transform {
namespace {

using kinect::BodyModel;
using kinect::GestureShape;
using kinect::GestureShapes;
using kinect::JointId;
using kinect::MotionParams;
using kinect::SkeletonFrame;
using kinect::SynthesizeSample;
using kinect::UserProfile;

MotionParams Deterministic() {
  MotionParams params;
  params.noise_stddev_mm = 0.0;
  params.amplitude_jitter = 0.0;
  params.time_warp = 0.0;
  params.sway_mm = 0.0;
  return params;
}

TEST(TransformTest, TorsoBecomesOrigin) {
  UserProfile profile;
  profile.torso_position = Vec3(321.0, 88.0, 2500.0);
  BodyModel model(profile);
  SkeletonFrame frame = model.NeutralFrame(0);
  SkeletonFrame transformed = TransformFrame(frame, TransformConfig());
  EXPECT_TRUE(transformed.joint(JointId::kTorso).ApproxEquals(Vec3(), 1e-9));
}

TEST(TransformTest, EstimateYawExactForRigidBody) {
  for (double yaw : {-1.2, -0.5, 0.0, 0.3, 0.9}) {
    UserProfile profile;
    profile.yaw_rad = yaw;
    BodyModel model(profile);
    SkeletonFrame frame = model.NeutralFrame(0);
    EXPECT_NEAR(EstimateYaw(frame), yaw, 1e-9) << "yaw=" << yaw;
  }
}

TEST(TransformTest, MeasureForearmMatchesModel) {
  UserProfile profile;
  profile.height_mm = 1430.0;
  BodyModel model(profile);
  SkeletonFrame frame = model.PoseFrame(
      0, GestureShapes::SwipeRight().right_path(0.5),
      kinect::NeutralLeftHandOffset());
  EXPECT_NEAR(MeasureForearmLength(frame), model.forearm_length(), 1e-6);
}

TEST(TransformTest, DegenerateForearmDoesNotExplode) {
  SkeletonFrame frame;  // all joints at the origin
  TransformConfig config;
  SkeletonFrame out = TransformFrame(frame, config);
  for (const Vec3& joint : out.joints) {
    EXPECT_TRUE(std::isfinite(joint.x));
  }
}

TEST(TransformTest, AblationTranslateOffKeepsAbsolutePosition) {
  UserProfile profile;
  profile.torso_position = Vec3(500.0, 0.0, 3000.0);
  BodyModel model(profile);
  SkeletonFrame frame = model.NeutralFrame(0);
  TransformConfig config;
  config.translate = false;
  config.rotate = false;
  config.scale = false;
  SkeletonFrame out = TransformFrame(frame, config);
  EXPECT_TRUE(out.joint(JointId::kTorso)
                  .ApproxEquals(profile.torso_position, 1e-9));
}

// Invariance property suite (paper Sec. 3.2): the transformed right-hand
// trajectory must be identical for users who differ in position,
// orientation, and size. Deterministic synthesis, same seed.
struct InvarianceCase {
  const char* label;
  UserProfile profile;
};

class TransformInvarianceTest
    : public ::testing::TestWithParam<int> {
 public:
  static std::vector<InvarianceCase> Cases() {
    std::vector<InvarianceCase> cases;
    cases.push_back({"reference", UserProfile()});
    UserProfile shifted;
    shifted.torso_position = Vec3(-600.0, 320.0, 3200.0);
    cases.push_back({"shifted", shifted});
    UserProfile rotated;
    rotated.yaw_rad = 0.8;
    cases.push_back({"rotated", rotated});
    UserProfile child;
    child.height_mm = 1150.0;
    cases.push_back({"child", child});
    UserProfile tall_turned;
    tall_turned.height_mm = 2000.0;
    tall_turned.yaw_rad = -0.6;
    tall_turned.torso_position = Vec3(400.0, -100.0, 1500.0);
    cases.push_back({"tall_turned", tall_turned});
    UserProfile long_arms;
    long_arms.arm_scale = 1.15;
    cases.push_back({"long_arms", long_arms});
    return cases;
  }
};

TEST_P(TransformInvarianceTest, RightHandTrajectoryInvariant) {
  std::vector<InvarianceCase> cases = Cases();
  const InvarianceCase& test_case = cases[static_cast<size_t>(GetParam())];
  GestureShape shape = GestureShapes::SwipeRight();

  std::vector<SkeletonFrame> reference =
      SynthesizeSample(UserProfile(), shape, 17, Deterministic());
  std::vector<SkeletonFrame> variant =
      SynthesizeSample(test_case.profile, shape, 17, Deterministic());
  ASSERT_EQ(reference.size(), variant.size());

  TransformConfig config;
  for (size_t i = 0; i < reference.size(); ++i) {
    Vec3 ref_hand = TransformFrame(reference[i], config)
                        .joint(JointId::kRightHand);
    Vec3 var_hand = TransformFrame(variant[i], config)
                        .joint(JointId::kRightHand);
    EXPECT_TRUE(ref_hand.ApproxEquals(var_hand, 1e-5))
        << test_case.label << " frame " << i << ": " << ref_hand.ToString()
        << " vs " << var_hand.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Users, TransformInvarianceTest,
                         ::testing::Range(0, 6));

TEST(TransformTest, WithoutTransformTrajectoriesDiffer) {
  // Negative control for E2: raw camera-space trajectories of different
  // users are far apart.
  GestureShape shape = GestureShapes::SwipeRight();
  UserProfile shifted;
  shifted.torso_position = Vec3(-600.0, 320.0, 3200.0);
  std::vector<SkeletonFrame> a =
      SynthesizeSample(UserProfile(), shape, 17, Deterministic());
  std::vector<SkeletonFrame> b =
      SynthesizeSample(shifted, shape, 17, Deterministic());
  double max_gap = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_gap = std::max(max_gap, a[i].joint(JointId::kRightHand)
                                    .DistanceTo(b[i].joint(JointId::kRightHand)));
  }
  EXPECT_GT(max_gap, 500.0);
}

TEST(RpyTest, DirectionAnglesBasics) {
  // Straight ahead (-Z): yaw 0, pitch 0.
  RollPitchYaw ahead = DirectionAngles(Vec3(0, 0, -1));
  EXPECT_NEAR(ahead.yaw, 0.0, 1e-9);
  EXPECT_NEAR(ahead.pitch, 0.0, 1e-9);
  // Lateral (+X): yaw pi/2.
  RollPitchYaw lateral = DirectionAngles(Vec3(1, 0, 0));
  EXPECT_NEAR(lateral.yaw, M_PI / 2, 1e-9);
  // Straight up: pitch pi/2.
  RollPitchYaw up = DirectionAngles(Vec3(0, 1, 0));
  EXPECT_NEAR(up.pitch, M_PI / 2, 1e-9);
  // Down-forward diagonal.
  RollPitchYaw diag = DirectionAngles(Vec3(0, -1, -1));
  EXPECT_NEAR(diag.pitch, -M_PI / 4, 1e-9);
  // Zero vector: all zeros.
  RollPitchYaw zero = DirectionAngles(Vec3());
  EXPECT_EQ(zero.pitch, 0.0);
  EXPECT_EQ(zero.yaw, 0.0);
}

TEST(RpyTest, RaisedArmHasHighPitch) {
  UserProfile profile;
  BodyModel model(profile);
  SkeletonFrame frame =
      model.PoseFrame(0, Vec3(200, 500, -120), kinect::NeutralLeftHandOffset());
  SkeletonFrame user = TransformFrame(frame, TransformConfig());
  RollPitchYaw angles = ForearmAngles(user, /*right_side=*/true);
  EXPECT_GT(angles.pitch, 0.5);
}

TEST(RpyTest, WaveOscillatesYaw) {
  UserProfile profile;
  kinect::FrameSynthesizer synth(profile, 3, Deterministic());
  std::vector<SkeletonFrame> frames =
      synth.PerformGesture(GestureShapes::Wave());
  TransformConfig config;
  double min_yaw = 10.0;
  double max_yaw = -10.0;
  for (const SkeletonFrame& frame : frames) {
    RollPitchYaw angles =
        ForearmAngles(TransformFrame(frame, config), /*right_side=*/true);
    min_yaw = std::min(min_yaw, angles.yaw);
    max_yaw = std::max(max_yaw, angles.yaw);
  }
  EXPECT_GT(max_yaw - min_yaw, 0.4);
}

TEST(ViewTest, KinectTSchemaExtendsKinect) {
  const stream::Schema& schema = KinectTSchema();
  EXPECT_EQ(schema.num_fields(), kinect::KinectSchema().num_fields() + 6);
  EXPECT_TRUE(schema.HasField("rForearm_yaw"));
  EXPECT_TRUE(schema.HasField("lForearm_roll"));
}

TEST(ViewTest, EndToEndTransformedEvents) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  EPL_ASSERT_OK(RegisterKinectTView(&engine));
  auto sink = std::make_unique<stream::CollectSink>();
  stream::CollectSink* sink_ptr = sink.get();
  EPL_ASSERT_OK(engine.Deploy(kKinectTViewName, std::move(sink)).status());

  UserProfile profile;
  profile.torso_position = Vec3(200.0, 100.0, 2200.0);
  BodyModel model(profile);
  EPL_ASSERT_OK(engine.Push("kinect",
                            kinect::FrameToEvent(model.NeutralFrame(5))));
  ASSERT_EQ(sink_ptr->events().size(), 1u);
  const stream::Event& event = sink_ptr->events()[0];
  EXPECT_EQ(event.values.size(),
            static_cast<size_t>(KinectTSchema().num_fields()));
  EXPECT_EQ(event.timestamp, 5);
  // Torso fields are ~0 in the transformed view.
  EPL_ASSERT_OK_AND_ASSIGN(int torso_x,
                           KinectTSchema().FieldIndex("torso_x"));
  EXPECT_NEAR(event.values[static_cast<size_t>(torso_x)], 0.0, 1e-9);
}

TEST(ViewTest, ViewRegistrationRequiresKinectStream) {
  stream::StreamEngine engine;
  Status status = RegisterKinectTView(&engine);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace epl::transform
