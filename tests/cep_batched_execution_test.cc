// Batch-boundary behavior of the batched flat runtime, end to end:
// matcher-level chunking equivalence (including chunk size 1, which must
// take the same ProcessFlatBatch path and agree with per-event
// ProcessFlat), partial runs spanning batch edges, MultiMatchOperator
// window accumulation (control operations flush first; callback-driven
// add/remove keeps per-event semantics mid-batch via pattern catch-up),
// and ShardedEngine workers executing whole fan-out batches as one
// matcher sweep without perturbing the deterministic merge order.

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cep/multi_match_operator.h"
#include "cep/multi_matcher.h"
#include "cep/pattern.h"
#include "cep/sharded_engine.h"
#include "cep_workload_test_util.h"
#include "query/compiler.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using testing::CompileDefinitions;
using testing::DetectionRecord;
using testing::MakeSpec;
using testing::Recorder;
using testing::TrainedDefinitions;
using testing::Workload;

const stream::Schema& XSchema() {
  static const stream::Schema* schema =
      new stream::Schema(std::vector<std::string>{"x"});
  return *schema;
}

/// A chain pattern over field x: one pose per (center, width) range.
CompiledPattern CompileChain(
    const std::vector<std::pair<double, double>>& ranges,
    std::optional<Duration> within = std::nullopt) {
  std::vector<PatternExprPtr> poses;
  poses.reserve(ranges.size());
  for (const auto& [center, width] : ranges) {
    poses.push_back(
        PatternExpr::Pose("s", Expr::RangePredicate("x", center, width)));
  }
  Result<CompiledPattern> compiled = CompiledPattern::Compile(
      *PatternExpr::Sequence(std::move(poses), within, WithinMode::kGap),
      XSchema());
  EPL_CHECK(compiled.ok()) << compiled.status();
  return std::move(compiled).value();
}

Event XEvent(double t_ms, double x) {
  return Event(DurationFromMillis(t_ms), {x});
}

MultiMatchOperator::QuerySpec ChainSpec(
    const std::string& name,
    const std::vector<std::pair<double, double>>& ranges,
    DetectionCallback callback) {
  MultiMatchOperator::QuerySpec spec;
  spec.output_name = name;
  spec.pattern = CompileChain(ranges);
  spec.callback = std::move(callback);
  return spec;
}

/// Per-pattern match streams of a kinect workload under a fixed chunking.
std::vector<std::vector<PatternMatch>> ChunkedMatches(
    const std::vector<query::CompiledQuery>& queries,
    const std::vector<Event>& events, size_t chunk_size,
    MatcherOptions options) {
  MultiPatternMatcher multi(options);
  for (const query::CompiledQuery& query : queries) {
    multi.AddPattern(&query.pattern);
  }
  std::vector<std::vector<PatternMatch>> matches(queries.size());
  std::vector<MultiPatternMatcher::MultiMatch> scratch;
  size_t pos = 0;
  while (pos < events.size()) {
    const size_t chunk = std::min(chunk_size, events.size() - pos);
    scratch.clear();
    if (chunk_size == 0) {  // sentinel: per-event Process reference
      multi.Process(events[pos], &scratch);
      pos += 1;
    } else {
      multi.ProcessBatch(events.data() + pos, chunk, &scratch);
      pos += chunk;
    }
    for (MultiPatternMatcher::MultiMatch& match : scratch) {
      matches[static_cast<size_t>(match.pattern_index)].push_back(
          std::move(match.match));
    }
  }
  return matches;
}

TEST(BatchedExecutionTest, ChunkingIsEquivalentToPerEventProcessing) {
  std::vector<query::CompiledQuery> queries =
      CompileDefinitions(TrainedDefinitions(6));
  std::vector<Event> events = Workload(21);
  for (MatcherOptions::Mode mode : {MatcherOptions::Mode::kDominant,
                                    MatcherOptions::Mode::kExhaustive}) {
    MatcherOptions options;
    options.mode = mode;
    std::vector<std::vector<PatternMatch>> reference =
        ChunkedMatches(queries, events, 0, options);
    size_t total = 0;
    for (const std::vector<PatternMatch>& matches : reference) {
      total += matches.size();
    }
    ASSERT_GT(total, 0u);
    // Chunk 1 exercises ProcessFlatBatch's B=1 degenerate case; the rest
    // place batch edges at varying offsets relative to the matches.
    for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, size_t{16},
                         size_t{64}, events.size()}) {
      std::vector<std::vector<PatternMatch>> batched =
          ChunkedMatches(queries, events, chunk, options);
      for (size_t q = 0; q < queries.size(); ++q) {
        ASSERT_EQ(batched[q].size(), reference[q].size())
            << "mode " << static_cast<int>(mode) << " chunk " << chunk
            << " query " << q;
        for (size_t m = 0; m < batched[q].size(); ++m) {
          ASSERT_EQ(batched[q][m].state_times, reference[q][m].state_times)
              << "mode " << static_cast<int>(mode) << " chunk " << chunk
              << " query " << q << " match " << m;
        }
      }
    }
  }
}

TEST(BatchedExecutionTest, PartialRunSpansBatchEdge) {
  CompiledPattern pattern =
      CompileChain({{1.0, 0.4}, {2.0, 0.4}, {3.0, 0.4}}, kSecond);
  MultiPatternMatcher multi;
  multi.AddPattern(&pattern);

  // The run seeds and advances inside the first batch and completes in
  // the second: its entry timestamps must carry across the edge.
  std::vector<Event> events = {XEvent(0, 1.0), XEvent(100, 2.0),
                               XEvent(200, 3.0)};
  std::vector<MultiPatternMatcher::MultiMatch> matches;
  multi.ProcessBatch(events.data(), 2, &matches);
  EXPECT_TRUE(matches.empty());
  multi.ProcessBatch(events.data() + 2, 1, &matches);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].batch_index, 0);
  EXPECT_EQ(matches[0].match.state_times,
            (std::vector<TimePoint>{DurationFromMillis(0),
                                    DurationFromMillis(100),
                                    DurationFromMillis(200)}));
}

TEST(BatchedExecutionTest, OperatorBatchSizeOneKeepsPerEventBehavior) {
  // batch_size 1 (the default) must not accumulate: detections fire
  // inside Process, before the call returns.
  MultiMatchOperator op(MatcherOptions(), /*batch_size=*/1);
  std::vector<DetectionRecord> records;
  op.AddQuery(ChainSpec("every", {{1.0, 0.5}}, Recorder(&records)));
  EPL_ASSERT_OK(op.Process(XEvent(0, 1.0)));
  EXPECT_EQ(records.size(), 1u);
  EPL_ASSERT_OK(op.Process(XEvent(10, 1.0)));
  EXPECT_EQ(records.size(), 2u);
}

TEST(BatchedExecutionTest, ControlOperationsFlushTheAccumulatedWindow) {
  MultiMatchOperator op(MatcherOptions(), /*batch_size=*/100);
  std::vector<DetectionRecord> first_records;
  std::vector<DetectionRecord> second_records;
  const int first_id =
      op.AddQuery(ChainSpec("first", {{1.0, 0.5}}, Recorder(&first_records)));

  // Three events accumulate: nothing is dispatched yet.
  for (int i = 0; i < 3; ++i) {
    EPL_ASSERT_OK(op.Process(XEvent(10.0 * i, 1.0)));
  }
  EXPECT_TRUE(first_records.empty());

  // AddQuery flushes the window first: the buffered events are delivered
  // to the old query set and the new query sees none of them.
  op.AddQuery(ChainSpec("second", {{1.0, 0.5}}, Recorder(&second_records)));
  EXPECT_EQ(first_records.size(), 3u);
  EXPECT_TRUE(second_records.empty());

  // Two more accumulate; RemoveQuery flushes first, so the removed query
  // still sees them.
  for (int i = 3; i < 5; ++i) {
    EPL_ASSERT_OK(op.Process(XEvent(10.0 * i, 1.0)));
  }
  EXPECT_EQ(first_records.size(), 3u);
  EPL_ASSERT_OK(op.RemoveQuery(first_id));
  EXPECT_EQ(first_records.size(), 5u);
  EXPECT_EQ(second_records.size(), 2u);

  // Close flushes the tail; the removed query is gone.
  for (int i = 5; i < 7; ++i) {
    EPL_ASSERT_OK(op.Process(XEvent(10.0 * i, 1.0)));
  }
  EPL_ASSERT_OK(op.Close());
  EXPECT_EQ(first_records.size(), 5u);
  EXPECT_EQ(second_records.size(), 4u);
}

TEST(BatchedExecutionTest, ResetMatchersFlushesTheAccumulatedWindow) {
  MultiMatchOperator op(MatcherOptions(), /*batch_size=*/100);
  std::vector<DetectionRecord> records;
  // 2-state chain: the first event seeds, the second completes.
  op.AddQuery(ChainSpec("pair", {{1.0, 0.5}, {2.0, 0.5}}, Recorder(&records)));
  EPL_ASSERT_OK(op.Process(XEvent(0, 1.0)));
  EPL_ASSERT_OK(op.Process(XEvent(10, 2.0)));
  // The buffered pair must complete BEFORE the reset discards runs; the
  // seed event after it must not pair with pre-reset state.
  op.ResetMatchers();
  EXPECT_EQ(records.size(), 1u);
  EPL_ASSERT_OK(op.Process(XEvent(20, 2.0)));
  EPL_ASSERT_OK(op.Close());
  EXPECT_EQ(records.size(), 1u);  // no seed survived the reset
}

TEST(BatchedExecutionTest, CloseFromInsideACallbackDoesNotRerunTheWindow) {
  auto op = std::make_unique<MultiMatchOperator>(MatcherOptions(),
                                                /*batch_size=*/4);
  std::vector<DetectionRecord> records;
  MultiMatchOperator::QuerySpec spec =
      ChainSpec("every", {{1.0, 0.5}}, nullptr);
  MultiMatchOperator* raw = op.get();
  spec.callback = [&records, raw](const Detection& detection) {
    records.push_back(DetectionRecord{detection.name, detection.time,
                                      detection.pose_times});
    // A re-entrant flush mid-sweep must not process the window twice.
    EPL_EXPECT_OK(raw->Close());
  };
  op->AddQuery(std::move(spec));
  for (int i = 0; i < 4; ++i) {
    EPL_ASSERT_OK(op->Process(XEvent(10.0 * i, 1.0)));
  }
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].time, DurationFromMillis(10.0 * i));
  }
}

/// One run of the mid-callback self-exchange scenario: query "first"
/// removes itself and installs "second" from inside its first detection
/// callback, mid-stream. Returns every detection in delivery order.
std::vector<DetectionRecord> RunMidCallbackExchange(size_t batch_size) {
  auto op = std::make_unique<MultiMatchOperator>(MatcherOptions(), batch_size);
  std::vector<DetectionRecord> records;
  bool exchanged = false;
  int first_id = -1;
  MultiMatchOperator::QuerySpec spec =
      ChainSpec("first", {{1.0, 0.5}}, nullptr);
  MultiMatchOperator* raw = op.get();
  spec.callback = [&records, &exchanged, &first_id, raw](
                      const Detection& detection) {
    records.push_back(DetectionRecord{detection.name, detection.time,
                                      detection.pose_times});
    if (!exchanged) {
      exchanged = true;
      std::vector<DetectionRecord>* out = &records;
      MultiMatchOperator::QuerySpec replacement =
          ChainSpec("second", {{1.0, 0.5}}, Recorder(out));
      raw->AddQuery(std::move(replacement));
      EPL_EXPECT_OK(raw->RemoveQuery(first_id));
    }
  };
  first_id = op->AddQuery(std::move(spec));
  for (int i = 0; i < 10; ++i) {
    EPL_EXPECT_OK(op->Process(XEvent(10.0 * i, 1.0)));
  }
  EPL_EXPECT_OK(op->Close());
  return records;
}

TEST(BatchedExecutionTest, MidCallbackExchangeIsBitExactUnderBatching) {
  // Unbatched semantics: "first" fires once (event 0), the exchange
  // applies before event 1, and "second" -- added mid-stream -- sees
  // events 1..9. A batched operator must reproduce this exactly even when
  // the exchange lands in the middle of a window: the removed query's
  // remaining matches are dropped and the added query catches up on the
  // window's tail.
  const std::vector<DetectionRecord> reference = RunMidCallbackExchange(1);
  ASSERT_EQ(reference.size(), 10u);
  EXPECT_EQ(reference[0].name, "first");
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].name, "second");
    EXPECT_EQ(reference[i].time, DurationFromMillis(10.0 * i));
  }
  for (size_t batch_size : {size_t{2}, size_t{4}, size_t{7}, size_t{100}}) {
    const std::vector<DetectionRecord> batched =
        RunMidCallbackExchange(batch_size);
    ASSERT_TRUE(batched == reference) << "batch_size " << batch_size << ": "
                                      << batched.size() << " vs "
                                      << reference.size() << " records";
  }
}

TEST(BatchedExecutionTest, MidCallbackRemoveDropsTailMatchesOfTheWindow) {
  // Two queries fire on every event; "killer"'s first detection removes
  // "victim". The victim still sees the in-flight event (its match for
  // that event is delivered) but none after, no matter where the batch
  // edges fall.
  auto run = [](size_t batch_size) {
    MultiMatchOperator op(MatcherOptions(), batch_size);
    std::vector<DetectionRecord> records;
    int victim_id = -1;
    bool removed = false;
    MultiMatchOperator::QuerySpec killer =
        ChainSpec("killer", {{1.0, 0.5}}, nullptr);
    killer.callback = [&records, &removed, &victim_id,
                       &op](const Detection& detection) {
      records.push_back(DetectionRecord{detection.name, detection.time,
                                        detection.pose_times});
      if (!removed) {
        removed = true;
        EPL_EXPECT_OK(op.RemoveQuery(victim_id));
      }
    };
    op.AddQuery(std::move(killer));
    victim_id = op.AddQuery(ChainSpec("victim", {{1.0, 0.5}},
                                      Recorder(&records)));
    for (int i = 0; i < 6; ++i) {
      EPL_EXPECT_OK(op.Process(XEvent(10.0 * i, 1.0)));
    }
    EPL_EXPECT_OK(op.Close());
    return records;
  };
  const std::vector<DetectionRecord> reference = run(1);
  ASSERT_EQ(reference.size(), 7u);  // 6x killer + victim's event-0 match
  EXPECT_EQ(reference[1].name, "victim");
  for (size_t batch_size : {size_t{3}, size_t{4}, size_t{100}}) {
    ASSERT_TRUE(run(batch_size) == reference) << "batch_size " << batch_size;
  }
}

TEST(BatchedExecutionTest, ShardedBatchedWorkersStayDeterministic) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(5);
  std::vector<Event> events = Workload(29);
  const size_t join_at = events.size() / 2;

  // Reference: unbatched fused operator for the initial four queries over
  // the full stream, and for the late query over the suffix.
  std::vector<DetectionRecord> fused_records;
  {
    MultiMatchOperator op;
    std::vector<query::CompiledQuery> compiled = CompileDefinitions(
        {definitions[0], definitions[1], definitions[2], definitions[3]});
    for (query::CompiledQuery& query : compiled) {
      op.AddQuery(MakeSpec(std::move(query), Recorder(&fused_records)));
    }
    for (const Event& event : events) {
      EPL_ASSERT_OK(op.Process(event));
    }
  }
  std::vector<DetectionRecord> fused_late_records;
  {
    MultiMatchOperator op;
    op.AddQuery(MakeSpec(std::move(CompileDefinitions({definitions[4]})[0]),
                         Recorder(&fused_late_records)));
    for (size_t i = join_at; i < events.size(); ++i) {
      EPL_ASSERT_OK(op.Process(events[i]));
    }
  }
  ASSERT_FALSE(fused_records.empty());
  ASSERT_FALSE(fused_late_records.empty());

  // Engine batch sizes chosen so the mid-stream AddQuery lands inside an
  // accumulating batch (join_at is not a multiple of 5 or 32): the
  // quiesce must flush the partial window before the query set changes.
  for (size_t batch_size : {size_t{1}, size_t{5}, size_t{32}}) {
    SCOPED_TRACE("batch_size " + std::to_string(batch_size));
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.batch_size = batch_size;
    ShardedEngine sharded(options);
    std::vector<DetectionRecord> records;
    std::vector<DetectionRecord> late_records;
    std::vector<query::CompiledQuery> compiled = CompileDefinitions(
        {definitions[0], definitions[1], definitions[2], definitions[3]});
    for (query::CompiledQuery& query : compiled) {
      sharded.AddQuery(MakeSpec(std::move(query), Recorder(&records)));
    }
    EPL_ASSERT_OK(sharded.Start());
    for (size_t i = 0; i < join_at; ++i) {
      ASSERT_TRUE(sharded.Push(events[i]));
    }
    sharded.AddQuery(
        MakeSpec(std::move(CompileDefinitions({definitions[4]})[0]),
                 Recorder(&late_records)));
    for (size_t i = join_at; i < events.size(); ++i) {
      ASSERT_TRUE(sharded.Push(events[i]));
    }
    EPL_ASSERT_OK(sharded.Stop());
    ASSERT_TRUE(records == fused_records)
        << records.size() << " vs " << fused_records.size() << " records";
    ASSERT_TRUE(late_records == fused_late_records)
        << late_records.size() << " vs " << fused_late_records.size()
        << " late records";
  }
}

}  // namespace
}  // namespace epl::cep
