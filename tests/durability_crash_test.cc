// Crash-recovery harness: for EVERY registered crash point and every
// shared-runtime backend, fork a child that dies (SIGKILL, mid-write) at
// that point, recover in the parent, and assert the combined detection
// stream is bit-identical to a run that never crashed:
//
//   - the child's live detections are a PREFIX of the reference stream
//     (the crash never invents or reorders detections), and
//   - the recovered stream is exactly the reference SUFFIX from the
//     replay cut, overlapping or abutting the child's prefix -- so no
//     detection is lost, ever (at-least-once past the cut).
//
// The child appends each delivered detection to an O_APPEND side log
// (one write() per record: the page cache survives SIGKILL exactly like
// the WAL's own appends), which is what makes the prefix assertion
// honest. A randomized kill-point fuzz (env-gated, for the CI fuzz leg)
// reuses the same oracle with random (backend, point, nth) triples.

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cep_workload_test_util.h"
#include "durability/crash_point.h"
#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "test_util.h"
#include "workflow/composite.h"
#include "workflow/gesture_runtime.h"

namespace epl::workflow {
namespace {

using cep::testing::DetectionRecord;
using cep::testing::Recorder;
using cep::testing::TrainedDefinitions;
using kinect::GestureShapes;
using kinect::SkeletonFrame;
using kinect::UserProfile;

struct BackendConfig {
  RuntimeBackend backend;
  size_t batch_size;
  int num_shards;
  const char* label;
};

const BackendConfig kBackends[] = {
    {RuntimeBackend::kFused, 1, 1, "Fused"},
    {RuntimeBackend::kFused, 8, 1, "FusedBatched"},
    {RuntimeBackend::kSharded, 1, 4, "Sharded4"},
};

/// The first OpenSession of a fresh runtime; recovery restores it under
/// the same pinned id.
constexpr SessionId kScriptSession = 0;

const std::vector<SkeletonFrame>& ScriptFrames() {
  static const std::vector<SkeletonFrame>* frames = [] {
    kinect::SessionBuilder builder(UserProfile(), 77);
    for (int i = 0; i < 3; ++i) {
      builder.Perform(GestureShapes::SwipeRight(), 0.2);
      builder.Idle(0.2);
      builder.Perform(GestureShapes::RaiseHand(), 0.1);
      builder.Idle(0.2);
    }
    return new std::vector<SkeletonFrame>(builder.TakeFrames());
  }();
  return *frames;
}

GestureRuntimeOptions MakeOptions(const BackendConfig& config,
                                  const std::string& dir) {
  GestureRuntimeOptions options;
  options.backend = config.backend;
  options.batch_size = config.batch_size;
  options.num_shards = config.num_shards;
  options.sync_detections = true;
  options.durability.dir = dir;
  // Tiny segments + tight group commit so rotation/sync paths (and their
  // crash points) fire many times within one scripted run.
  options.durability.segment_bytes = 512;
  options.durability.sync_every_records = 4;
  return options;
}

size_t CutK1() { return ScriptFrames().size() / 3; }
size_t CutK2() { return 2 * ScriptFrames().size() / 3; }

/// One scripted durable run: open a session, deploy two gestures, ingest
/// a third of the frames, checkpoint, mutate the deployment set (the
/// mutations land in the WAL suffix), ingest to two thirds, checkpoint
/// again, ingest the rest. `at_arm` runs right after the first checkpoint
/// -- the crashing child arms its kill point there, so every crash lands
/// in the post-snapshot regime the recovery path must handle.
/// EPL_CHECK (abort) rather than gtest assertions: this also runs in the
/// forked child, where an abort surfaces as a non-SIGKILL exit the parent
/// fails on.
void RunScript(const GestureRuntimeOptions& options,
               const std::vector<core::GestureDefinition>& defs,
               const cep::DetectionCallback& callback,
               const std::function<void()>& at_arm) {
  const std::vector<SkeletonFrame>& frames = ScriptFrames();
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine, options);
  Result<SessionId> session = runtime.OpenSession("alice");
  EPL_CHECK(session.ok()) << session.status();
  EPL_CHECK(*session == kScriptSession);
  auto deploy = [&](const core::GestureDefinition& def) {
    Status status = runtime.Deploy(*session, def, callback);
    EPL_CHECK(status.ok()) << status;
  };
  auto push_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Status status = runtime.PushFrame(*session, frames[i]);
      EPL_CHECK(status.ok()) << status;
    }
  };
  deploy(defs[0]);
  deploy(defs[1]);
  push_range(0, CutK1());
  Status checkpoint = runtime.Checkpoint();
  EPL_CHECK(checkpoint.ok()) << checkpoint;
  if (at_arm) at_arm();
  // WAL-suffix mutations: a fresh deploy and an undeploy the recovery
  // path must replay (or the resuming producer reapply, when the crash
  // tore their records).
  deploy(defs[2]);
  Status undeployed = runtime.Undeploy(*session, defs[1].name);
  EPL_CHECK(undeployed.ok()) << undeployed;
  push_range(CutK1(), CutK2());
  checkpoint = runtime.Checkpoint();
  EPL_CHECK(checkpoint.ok()) << checkpoint;
  push_range(CutK2(), frames.size());
  Status flushed = runtime.Flush();
  EPL_CHECK(flushed.ok()) << flushed;
}

/// One-step composite definition: `count` x `gesture` from `session`.
CompositeDefinition MakeComposite(const std::string& name, SessionId session,
                                  const std::string& gesture, int count,
                                  double within_seconds) {
  CompositeDefinition definition;
  definition.name = name;
  definition.steps.push_back(
      CompositeStep{static_cast<int>(session), gesture, count});
  definition.within_seconds = within_seconds;
  return definition;
}

/// The composite variant of RunScript: the same skeleton, but the initial
/// deploy set adds a two-level composite ladder over defs[0] ("combo" ->
/// "meta") plus a multi-detection composite ("pair", whose partial run
/// spans the checkpoints, so composite run state rides the snapshot), and
/// the WAL suffix deploys one more composite ("tail", replayed from its
/// kDeployComposite record) and undeploys the level-2 one. Derived
/// detection events are never written to the WAL, so the bit-identity
/// assertion doubles as the no-double-apply check: recovery replays base
/// frames and re-derives every composite detection, and a derived event
/// applied twice would mint extra composite detections and break the
/// suffix equality.
void RunCompositeScript(const GestureRuntimeOptions& options,
                        const std::vector<core::GestureDefinition>& defs,
                        const cep::DetectionCallback& callback,
                        const std::function<void()>& at_arm) {
  const std::vector<SkeletonFrame>& frames = ScriptFrames();
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine, options);
  Result<SessionId> session = runtime.OpenSession("alice");
  EPL_CHECK(session.ok()) << session.status();
  EPL_CHECK(*session == kScriptSession);
  auto check = [](const Status& status) { EPL_CHECK(status.ok()) << status; };
  auto push_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Status status = runtime.PushFrame(*session, frames[i]);
      EPL_CHECK(status.ok()) << status;
    }
  };
  check(runtime.Deploy(*session, defs[0], callback));
  check(runtime.Deploy(*session, defs[1], callback));
  check(runtime.DeployComposite(
      *session, MakeComposite("combo", *session, defs[0].name, 1, 0),
      callback));
  check(runtime.DeployComposite(
      *session, MakeComposite("meta", *session, "combo", 1, 0), callback));
  check(runtime.DeployComposite(
      *session, MakeComposite("pair", *session, defs[0].name, 2, 60.0),
      callback));
  push_range(0, CutK1());
  check(runtime.Checkpoint());
  if (at_arm) at_arm();
  check(runtime.DeployComposite(
      *session, MakeComposite("tail", *session, defs[1].name, 1, 0),
      callback));
  check(runtime.Undeploy(*session, "meta"));
  push_range(CutK1(), CutK2());
  check(runtime.Checkpoint());
  push_range(CutK2(), frames.size());
  check(runtime.Flush());
}

using ScriptRunner =
    std::function<void(const GestureRuntimeOptions&,
                       const std::vector<core::GestureDefinition>&,
                       const cep::DetectionCallback&,
                       const std::function<void()>&)>;

/// The reference detection stream of one backend: the script, durable,
/// never crashed.
std::vector<DetectionRecord> ReferenceRun(
    const BackendConfig& config,
    const std::vector<core::GestureDefinition>& defs,
    const ScriptRunner& script) {
  epl::testing::ScopedTempDir dir;
  std::vector<DetectionRecord> reference;
  script(MakeOptions(config, dir.path()), defs, Recorder(&reference),
         nullptr);
  return reference;
}

/// Reapplies the post-checkpoint mutations of RunScript whose WAL records
/// the crash tore away (each independently: the crash can land between
/// them).
void ReapplyBaseMutations(GestureRuntime* runtime,
                          const std::vector<core::GestureDefinition>& defs,
                          std::vector<DetectionRecord>* recovered) {
  if (!runtime->IsDeployed(kScriptSession, defs[2].name)) {
    EPL_ASSERT_OK(
        runtime->Deploy(kScriptSession, defs[2], Recorder(recovered)));
  }
  if (runtime->IsDeployed(kScriptSession, defs[1].name)) {
    EPL_ASSERT_OK(runtime->Undeploy(kScriptSession, defs[1].name));
  }
}

/// Same for RunCompositeScript's suffix mutations.
void ReapplyCompositeMutations(
    GestureRuntime* runtime, const std::vector<core::GestureDefinition>& defs,
    std::vector<DetectionRecord>* recovered) {
  if (!runtime->IsDeployed(kScriptSession, "tail")) {
    EPL_ASSERT_OK(runtime->DeployComposite(
        kScriptSession, MakeComposite("tail", kScriptSession, defs[1].name, 1, 0),
        Recorder(recovered)));
  }
  if (runtime->IsDeployed(kScriptSession, "meta")) {
    EPL_ASSERT_OK(runtime->Undeploy(kScriptSession, "meta"));
  }
}

using ReapplyFn =
    std::function<void(GestureRuntime*,
                       const std::vector<core::GestureDefinition>&,
                       std::vector<DetectionRecord>*)>;

/// Detection callback writing one line per detection straight to `fd`
/// (O_APPEND, one write() each) -- the child's crash-surviving live log.
cep::DetectionCallback FileRecorder(int fd) {
  return [fd](const cep::Detection& detection) {
    std::ostringstream line;
    line << detection.name << '|' << detection.time << '|';
    for (size_t i = 0; i < detection.pose_times.size(); ++i) {
      if (i > 0) line << ' ';
      line << detection.pose_times[i];
    }
    line << '\n';
    const std::string text = line.str();
    ssize_t written = ::write(fd, text.data(), text.size());
    EPL_CHECK(written == static_cast<ssize_t>(text.size()));
  };
}

std::vector<DetectionRecord> ParseDetectionLog(const std::string& path) {
  std::vector<DetectionRecord> records;
  Result<std::string> content = durability::DefaultFileSystem()->ReadFile(path);
  if (!content.ok()) return records;  // crashed before the first detection
  std::istringstream in(*content);
  std::string line;
  while (std::getline(in, line)) {
    DetectionRecord record;
    const size_t p1 = line.find('|');
    const size_t p2 = line.find('|', p1 + 1);
    EPL_CHECK(p1 != std::string::npos && p2 != std::string::npos) << line;
    record.name = line.substr(0, p1);
    record.time = std::strtoll(line.c_str() + p1 + 1, nullptr, 10);
    std::istringstream times(line.substr(p2 + 1));
    TimePoint t = 0;
    while (times >> t) record.pose_times.push_back(t);
    records.push_back(std::move(record));
  }
  return records;
}

/// Forks a child that runs the script and dies at the `nth` firing of
/// crash point `point`; recovers in the parent; asserts prefix/suffix
/// bit-identity against `reference`. With `allow_survival` (fuzz mode,
/// where a random nth may exceed the point's execution count) a child
/// that completes the whole script is accepted and recovery is verified
/// from the final on-disk state instead.
void RunCrashCase(const BackendConfig& config, const std::string& point,
                  int nth, bool allow_survival,
                  const std::vector<core::GestureDefinition>& defs,
                  const std::vector<DetectionRecord>& reference,
                  const ScriptRunner& script, const ReapplyFn& reapply) {
  SCOPED_TRACE(std::string(config.label) + " @ " + point + ":" +
               std::to_string(nth));
  epl::testing::ScopedTempDir dir;
  const std::string wal_dir = dir.path() + "/wal";
  const std::string live_log = dir.path() + "/child_detections.log";
  const GestureRuntimeOptions options = MakeOptions(config, wal_dir);

  // No live threads here: every prior runtime (reference, earlier cases)
  // was destroyed, so the fork is single-threaded and safe.
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed: " << std::strerror(errno);
  if (pid == 0) {
    int fd = ::open(live_log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    EPL_CHECK(fd >= 0);
    script(options, defs, FileRecorder(fd), [&] {
      durability::ArmCrashPoint(point, nth);
    });
    // The armed point never fired: the script ran to completion.
    ::_exit(42);
  }

  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  const bool killed =
      WIFSIGNALED(wait_status) && WTERMSIG(wait_status) == SIGKILL;
  const bool survived = WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 42;
  if (survived && !allow_survival) {
    FAIL() << "crash point " << point << " never fired";
  }
  ASSERT_TRUE(killed || survived)
      << "child died abnormally (neither SIGKILL nor clean): status "
      << wait_status;

  const std::vector<DetectionRecord> child_live = ParseDetectionLog(live_log);
  // The child saw a prefix of the reference stream -- crashing never
  // invents, reorders, or alters detections.
  ASSERT_LE(child_live.size(), reference.size());
  for (size_t i = 0; i < child_live.size(); ++i) {
    ASSERT_EQ(child_live[i], reference[i]) << "live detection " << i;
  }

  // Recover and finish the producer's script.
  stream::StreamEngine engine;
  std::vector<DetectionRecord> recovered;
  RecoverStats stats;
  auto factory = [&](SessionId, const std::string&) {
    return Recorder(&recovered);
  };
  EPL_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<GestureRuntime> runtime,
      GestureRuntime::Recover(&engine, options, factory, &stats));
  reapply(runtime.get(), defs, &recovered);
  const std::vector<SkeletonFrame>& frames = ScriptFrames();
  const uint64_t resume = stats.ingested[kScriptSession];
  ASSERT_LE(resume, frames.size());
  ASSERT_GE(resume, killed ? CutK1() : frames.size());
  for (size_t i = resume; i < frames.size(); ++i) {
    EPL_ASSERT_OK(runtime->PushFrame(kScriptSession, frames[i]));
  }
  EPL_ASSERT_OK(runtime->Flush());

  // The recovered stream is exactly the reference suffix from the replay
  // cut, and the cut is covered by the child's live prefix: bit-identical
  // content, nothing lost.
  ASSERT_LE(recovered.size(), reference.size());
  const size_t cut = reference.size() - recovered.size();
  ASSERT_LE(cut, child_live.size())
      << "a detection was neither delivered live nor recovered";
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i], reference[cut + i]) << "recovered detection " << i;
  }
}

// ---------------------------------------------------------------------------
// The full matrix: every registered crash point x every backend.

class DurabilityCrashTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DurabilityCrashTest, RecoversBitIdentically) {
  const BackendConfig& config = kBackends[std::get<0>(GetParam())];
  const std::string& point = std::get<1>(GetParam());
  const std::vector<core::GestureDefinition> defs = TrainedDefinitions(3);
  const std::vector<DetectionRecord> reference =
      ReferenceRun(config, defs, RunScript);
  ASSERT_FALSE(reference.empty()) << "script produced no detections";
  RunCrashCase(config, point, /*nth=*/1, /*allow_survival=*/false, defs,
               reference, RunScript, ReapplyBaseMutations);
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllBackends, DurabilityCrashTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kBackends))),
        ::testing::ValuesIn(durability::RegisteredCrashPoints())),
    [](const ::testing::TestParamInfo<std::tuple<int, std::string>>& info) {
      return std::string(kBackends[std::get<0>(info.param)].label) + "_" +
             std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// The same matrix over the composite workload: crashes must not lose,
// duplicate, or reorder DERIVED detections either -- recovery replays
// base events only and re-derives the composite ladder bit-identically.

class DurabilityCompositeCrashTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DurabilityCompositeCrashTest, RecoversCompositesBitIdentically) {
  const BackendConfig& config = kBackends[std::get<0>(GetParam())];
  const std::string& point = std::get<1>(GetParam());
  const std::vector<core::GestureDefinition> defs = TrainedDefinitions(3);
  const std::vector<DetectionRecord> reference =
      ReferenceRun(config, defs, RunCompositeScript);
  ASSERT_FALSE(reference.empty()) << "script produced no detections";
  bool has_composite = false;
  for (const DetectionRecord& record : reference) {
    has_composite = has_composite || record.name == "combo" ||
                    record.name == "meta" || record.name == "pair" ||
                    record.name == "tail";
  }
  ASSERT_TRUE(has_composite)
      << "composite script produced no composite detections";
  RunCrashCase(config, point, /*nth=*/1, /*allow_survival=*/false, defs,
               reference, RunCompositeScript, ReapplyCompositeMutations);
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllBackends, DurabilityCompositeCrashTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kBackends))),
        ::testing::ValuesIn(durability::RegisteredCrashPoints())),
    [](const ::testing::TestParamInfo<std::tuple<int, std::string>>& info) {
      return std::string(kBackends[std::get<0>(info.param)].label) + "_" +
             std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// Randomized kill-point fuzz (the CI crash-recovery fuzz leg). Gated on
// EPL_DURABILITY_FUZZ_SECONDS; EPL_FUZZ_SEED pins the RNG for repros and
// the chosen seed is always printed.

TEST(DurabilityCrashFuzz, RandomizedKillPoints) {
  const char* seconds_env = std::getenv("EPL_DURABILITY_FUZZ_SECONDS");
  if (seconds_env == nullptr) {
    GTEST_SKIP() << "set EPL_DURABILITY_FUZZ_SECONDS to run the fuzz";
  }
  const int seconds = std::atoi(seconds_env);
  uint64_t seed = 0;
  if (const char* seed_env = std::getenv("EPL_FUZZ_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
  } else {
    seed = std::random_device{}();
  }
  std::fprintf(stderr, "fuzzing for %ds; repro with EPL_FUZZ_SEED=%" PRIu64 "\n",
               seconds, seed);
  std::mt19937_64 rng(seed);
  const std::vector<std::string>& points = durability::RegisteredCrashPoints();
  const std::vector<core::GestureDefinition> defs = TrainedDefinitions(3);
  std::vector<std::vector<DetectionRecord>> references;
  std::vector<std::vector<DetectionRecord>> composite_references;
  for (const BackendConfig& config : kBackends) {
    references.push_back(ReferenceRun(config, defs, RunScript));
    composite_references.push_back(
        ReferenceRun(config, defs, RunCompositeScript));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  int iteration = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const size_t which = rng() % std::size(kBackends);
    const std::string& point = points[rng() % points.size()];
    const int nth = 1 + static_cast<int>(rng() % 6);
    const bool composite = rng() % 2 == 1;
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(seed) +
                 (composite ? " (composite script)" : " (base script)"));
    RunCrashCase(kBackends[which], point, nth, /*allow_survival=*/true, defs,
                 composite ? composite_references[which] : references[which],
                 composite ? ScriptRunner(RunCompositeScript)
                           : ScriptRunner(RunScript),
                 composite ? ReapplyFn(ReapplyCompositeMutations)
                           : ReapplyFn(ReapplyBaseMutations));
    if (HasFatalFailure() || HasNonfatalFailure()) {
      std::fprintf(stderr,
                   "fuzz failure at iteration %d: repro with "
                   "EPL_FUZZ_SEED=%" PRIu64 "\n",
                   iteration, seed);
      return;
    }
    ++iteration;
  }
  std::fprintf(stderr, "fuzz clean after %d iterations\n", iteration);
}

}  // namespace
}  // namespace epl::workflow
