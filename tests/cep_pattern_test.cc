#include <gtest/gtest.h>

#include "cep/nfa.h"
#include "cep/pattern.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Schema;

Schema VSchema() { return Schema({"v"}); }

ExprPtr VInRange(double center, double width) {
  return Expr::RangePredicate("v", center, width);
}

PatternExprPtr SimplePose(double center) {
  return PatternExpr::Pose("s", VInRange(center, 0.5));
}

TEST(PatternTest, PoseValidation) {
  PatternExprPtr pose = SimplePose(1.0);
  EPL_EXPECT_OK(pose->Validate());
  EXPECT_EQ(pose->kind(), PatternKind::kPose);
  EXPECT_EQ(pose->NumPoses(), 1);
  EXPECT_EQ(pose->SourceStream(), "s");
}

TEST(PatternTest, PoseWithoutPredicateInvalid) {
  PatternExprPtr pose = PatternExpr::Pose("s", nullptr);
  EXPECT_EQ(pose->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, PoseWithoutSourceInvalid) {
  PatternExprPtr pose = PatternExpr::Pose("", VInRange(0, 1));
  EXPECT_EQ(pose->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, EmptySequenceInvalid) {
  PatternExprPtr seq = PatternExpr::Sequence({}, std::nullopt);
  EXPECT_EQ(seq->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, NonPositiveWithinInvalid) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  PatternExprPtr seq = PatternExpr::Sequence(std::move(children), Duration{0});
  EXPECT_EQ(seq->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, MixedSourcesInvalid) {
  std::vector<PatternExprPtr> children;
  children.push_back(PatternExpr::Pose("s1", VInRange(0, 1)));
  children.push_back(PatternExpr::Pose("s2", VInRange(0, 1)));
  PatternExprPtr seq =
      PatternExpr::Sequence(std::move(children), std::nullopt);
  EXPECT_EQ(seq->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PatternTest, NestedPosesCollectedInOrder) {
  // ((p1 -> p2) -> p3)
  std::vector<PatternExprPtr> inner;
  inner.push_back(SimplePose(1));
  inner.push_back(SimplePose(2));
  std::vector<PatternExprPtr> outer;
  outer.push_back(PatternExpr::Sequence(std::move(inner), kSecond));
  outer.push_back(SimplePose(3));
  PatternExprPtr pattern = PatternExpr::Sequence(std::move(outer), kSecond);
  EPL_EXPECT_OK(pattern->Validate());
  EXPECT_EQ(pattern->NumPoses(), 3);
  std::vector<const PatternExpr*> poses = pattern->Poses();
  ASSERT_EQ(poses.size(), 3u);
  EXPECT_EQ(poses[0]->predicate().ToString(), "abs(v - 1) < 0.5");
  EXPECT_EQ(poses[2]->predicate().ToString(), "abs(v - 3) < 0.5");
}

TEST(PatternTest, CloneIsDeep) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  PatternExprPtr seq = PatternExpr::Sequence(
      std::move(children), kSecond, WithinMode::kSpan, SelectPolicy::kAll,
      ConsumePolicy::kNone);
  PatternExprPtr clone = seq->Clone();
  EXPECT_EQ(clone->ToString(), seq->ToString());
  EXPECT_EQ(clone->within(), seq->within());
  EXPECT_EQ(clone->within_mode(), WithinMode::kSpan);
  EXPECT_EQ(clone->select_policy(), SelectPolicy::kAll);
  EXPECT_EQ(clone->consume_policy(), ConsumePolicy::kNone);
}

TEST(PatternTest, ToStringRendersStructure) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  PatternExprPtr seq = PatternExpr::Sequence(std::move(children), kSecond);
  std::string text = seq->ToString();
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("within"), std::string::npos);
  EXPECT_NE(text.find("select first"), std::string::npos);
}

TEST(CompiledPatternTest, SinglePose) {
  PatternExprPtr pose = SimplePose(5);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*pose, VSchema()));
  EXPECT_EQ(compiled.num_states(), 1);
  EXPECT_TRUE(compiled.constraints().empty());
  EXPECT_EQ(compiled.source_stream(), "s");
}

TEST(CompiledPatternTest, FlatSequenceGapConstraints) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  children.push_back(SimplePose(3));
  PatternExprPtr seq = PatternExpr::Sequence(std::move(children), kSecond);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*seq, VSchema()));
  EXPECT_EQ(compiled.num_states(), 3);
  // Gap mode on a 3-element sequence: constraints 0->1 and 1->2.
  ASSERT_EQ(compiled.constraints().size(), 2u);
  EXPECT_EQ(compiled.constraints()[0].from_state, 0);
  EXPECT_EQ(compiled.constraints()[0].to_state, 1);
  EXPECT_EQ(compiled.constraints()[0].max_gap, kSecond);
  EXPECT_EQ(compiled.constraints()[1].from_state, 1);
  EXPECT_EQ(compiled.constraints()[1].to_state, 2);
  EXPECT_EQ(compiled.constraints_into(1).size(), 1u);
  EXPECT_EQ(compiled.constraints_into(0).size(), 0u);
}

TEST(CompiledPatternTest, SpanConstraint) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  children.push_back(SimplePose(3));
  PatternExprPtr seq = PatternExpr::Sequence(std::move(children),
                                             2 * kSecond, WithinMode::kSpan);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*seq, VSchema()));
  ASSERT_EQ(compiled.constraints().size(), 1u);
  EXPECT_EQ(compiled.constraints()[0].from_state, 0);
  EXPECT_EQ(compiled.constraints()[0].to_state, 2);
  EXPECT_EQ(compiled.constraints()[0].max_gap, 2 * kSecond);
}

TEST(CompiledPatternTest, NestedPaperShape) {
  // ((p1 -> p2 within 1s) -> p3 within 1s): the paper's Fig. 1 structure.
  std::vector<PatternExprPtr> inner;
  inner.push_back(SimplePose(1));
  inner.push_back(SimplePose(2));
  std::vector<PatternExprPtr> outer;
  outer.push_back(PatternExpr::Sequence(std::move(inner), kSecond));
  outer.push_back(SimplePose(3));
  PatternExprPtr pattern = PatternExpr::Sequence(std::move(outer), kSecond);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*pattern, VSchema()));
  EXPECT_EQ(compiled.num_states(), 3);
  // Inner gap 0->1 (emitted first, depth-first); outer gap between the
  // completion of the inner sequence (state 1) and p3 (state 2).
  ASSERT_EQ(compiled.constraints().size(), 2u);
  EXPECT_EQ(compiled.constraints()[0].from_state, 0);
  EXPECT_EQ(compiled.constraints()[0].to_state, 1);
  EXPECT_EQ(compiled.constraints()[1].from_state, 1);
  EXPECT_EQ(compiled.constraints()[1].to_state, 2);
}

TEST(CompiledPatternTest, SequenceWithoutWithinHasNoConstraints) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  PatternExprPtr seq =
      PatternExpr::Sequence(std::move(children), std::nullopt);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*seq, VSchema()));
  EXPECT_TRUE(compiled.constraints().empty());
}

TEST(CompiledPatternTest, CompileFailsOnUnknownField) {
  PatternExprPtr pose =
      PatternExpr::Pose("s", Expr::RangePredicate("nope", 0, 1));
  Result<CompiledPattern> compiled = CompiledPattern::Compile(*pose, VSchema());
  EXPECT_EQ(compiled.status().code(), StatusCode::kNotFound);
}

TEST(CompiledPatternTest, PoliciesPropagated) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  PatternExprPtr seq = PatternExpr::Sequence(
      std::move(children), std::nullopt, WithinMode::kGap, SelectPolicy::kAll,
      ConsumePolicy::kNone);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*seq, VSchema()));
  EXPECT_EQ(compiled.select_policy(), SelectPolicy::kAll);
  EXPECT_EQ(compiled.consume_policy(), ConsumePolicy::kNone);
}

TEST(CompiledPatternTest, ToStringListsStatesAndConstraints) {
  std::vector<PatternExprPtr> children;
  children.push_back(SimplePose(1));
  children.push_back(SimplePose(2));
  PatternExprPtr seq = PatternExpr::Sequence(std::move(children), kSecond);
  EPL_ASSERT_OK_AND_ASSIGN(CompiledPattern compiled,
                           CompiledPattern::Compile(*seq, VSchema()));
  std::string text = compiled.ToString();
  EXPECT_NE(text.find("NFA with 2 states"), std::string::npos);
  EXPECT_NE(text.find("constraint"), std::string::npos);
}

}  // namespace
}  // namespace epl::cep
