// GestureRuntime durability semantics that the fork/kill harness
// (durability_crash_test.cc) does not pin down structurally: multi-session
// checkpoint/recover state restoration, WAL replay of session open/close
// and deploy/undeploy mutations, recovery from an empty directory, the
// legacy-backend guard -- plus the session GC regression: a close ->
// reopen cycle leaves no trace in the engine.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cep_workload_test_util.h"
#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "test_util.h"
#include "workflow/gesture_runtime.h"

namespace epl::workflow {
namespace {

using cep::testing::DetectionRecord;
using cep::testing::Recorder;
using cep::testing::TrainedDefinitions;
using kinect::SkeletonFrame;
using kinect::UserProfile;

std::vector<SkeletonFrame> SomeFrames(uint64_t seed) {
  kinect::SessionBuilder builder(UserProfile(), seed);
  builder.Perform(kinect::GestureShapes::SwipeRight(), 0.2);
  builder.Idle(0.2);
  builder.Perform(kinect::GestureShapes::RaiseHand(), 0.1);
  return builder.TakeFrames();
}

GestureRuntimeOptions DurableOptions(const std::string& dir) {
  GestureRuntimeOptions options;
  options.backend = RuntimeBackend::kFused;
  options.durability.dir = dir;
  options.durability.segment_bytes = 2048;
  options.durability.sync_every_records = 8;
  return options;
}

// ---------------------------------------------------------------------------
// Session GC (regression): close -> reopen leaves no trace.

TEST(SessionGcTest, CloseUnregistersNamespacedStreams) {
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine);
  const std::vector<std::string> before = engine.StreamNames();

  EPL_ASSERT_OK_AND_ASSIGN(SessionId session, runtime.OpenSession("alice"));
  EXPECT_TRUE(engine.HasStream("alice/kinect"));
  EXPECT_TRUE(engine.HasStream("alice/kinect_t"));
  const std::vector<SkeletonFrame> frames = SomeFrames(5);
  EPL_ASSERT_OK(runtime.PushFrame(session, frames[0]));

  EPL_ASSERT_OK(runtime.CloseSession(session));
  EPL_ASSERT_OK(runtime.Flush());
  EXPECT_FALSE(engine.HasStream("alice/kinect"));
  EXPECT_FALSE(engine.HasStream("alice/kinect_t"));
  // Only the shared session stream (registered on first use, shared by
  // future sessions) may remain beyond the initial set.
  for (const std::string& name : engine.StreamNames()) {
    EXPECT_TRUE(name == kSessionStreamName ||
                std::find(before.begin(), before.end(), name) != before.end())
        << "leaked stream: " << name;
  }
}

TEST(SessionGcTest, CloseReopenCycleIsClean) {
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine);
  const std::vector<core::GestureDefinition> defs = TrainedDefinitions(1);
  const std::vector<SkeletonFrame> frames = SomeFrames(6);

  std::vector<DetectionRecord> first_cycle, second_cycle;
  for (int cycle = 0; cycle < 2; ++cycle) {
    auto* out = cycle == 0 ? &first_cycle : &second_cycle;
    EPL_ASSERT_OK_AND_ASSIGN(SessionId session, runtime.OpenSession("alice"));
    EPL_ASSERT_OK(runtime.Deploy(session, defs[0], Recorder(out)));
    EPL_ASSERT_OK(runtime.PushFrames(session, frames));
    EPL_ASSERT_OK(runtime.Flush());
    EPL_ASSERT_OK(runtime.CloseSession(session));
    EPL_ASSERT_OK(runtime.Flush());
    EXPECT_EQ(runtime.DeployedGestures(session).size(), 0u);
  }
  // A reopened session behaves exactly like the first one.
  EXPECT_EQ(second_cycle, first_cycle);
  EXPECT_FALSE(first_cycle.empty());
}

TEST(SessionGcTest, ReopenWhileOpenStillFails) {
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine);
  EPL_ASSERT_OK(runtime.OpenSession("alice").status());
  EXPECT_FALSE(runtime.OpenSession("alice").ok());
}

// ---------------------------------------------------------------------------
// Checkpoint / Recover structural semantics.

TEST(WorkflowDurabilityTest, RecoverRestoresSessionsQueriesAndCounters) {
  epl::testing::ScopedTempDir dir;
  const GestureRuntimeOptions options = DurableOptions(dir.path());
  const std::vector<core::GestureDefinition> defs = TrainedDefinitions(3);
  const std::vector<SkeletonFrame> frames = SomeFrames(7);
  const size_t half = frames.size() / 2;

  SessionId alice = -1;
  SessionId bob = -1;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, options);
    std::vector<DetectionRecord> sink;
    EPL_ASSERT_OK_AND_ASSIGN(alice, runtime.OpenSession("alice"));
    EPL_ASSERT_OK_AND_ASSIGN(bob, runtime.OpenSession("bob"));
    EPL_ASSERT_OK(runtime.Deploy(alice, defs[0], Recorder(&sink)));
    EPL_ASSERT_OK(runtime.Deploy(bob, defs[1], Recorder(&sink)));
    for (size_t i = 0; i < half; ++i) {
      EPL_ASSERT_OK(runtime.PushFrame(alice, frames[i]));
      EPL_ASSERT_OK(runtime.PushFrame(bob, frames[i]));
    }
    EPL_ASSERT_OK(runtime.Checkpoint());
    // Everything below lands in the WAL suffix and must replay.
    EPL_ASSERT_OK(runtime.Deploy(alice, defs[2], Recorder(&sink)));
    EPL_ASSERT_OK(runtime.Undeploy(alice, defs[0].name));
    EPL_ASSERT_OK(runtime.CloseSession(bob));
    for (size_t i = half; i < frames.size(); ++i) {
      EPL_ASSERT_OK(runtime.PushFrame(alice, frames[i]));
    }
    // No Flush, no clean shutdown: the runtime simply goes away.
  }

  stream::StreamEngine engine;
  std::vector<DetectionRecord> recovered_detections;
  RecoverStats stats;
  EPL_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<GestureRuntime> runtime,
      GestureRuntime::Recover(
          &engine, options,
          [&](SessionId, const std::string&) {
            return Recorder(&recovered_detections);
          },
          &stats));

  // The snapshot covered the pre-checkpoint prefix; the mutations and the
  // second half of alice's frames were replayed from the WAL.
  EXPECT_GT(stats.snapshot_seq, 0u);
  EXPECT_GT(stats.replayed_records, 0u);
  EXPECT_EQ(stats.ingested[alice], frames.size());
  EXPECT_EQ(runtime->ingested_events(alice), frames.size());

  // Alice survived with her post-checkpoint deployment set; bob's close
  // replayed, leaving no session and no streams.
  EPL_ASSERT_OK(runtime->SessionViewStream(alice).status());
  EXPECT_TRUE(runtime->IsDeployed(alice, defs[2].name));
  EXPECT_FALSE(runtime->IsDeployed(alice, defs[0].name));
  EXPECT_FALSE(runtime->SessionViewStream(bob).ok());
  EXPECT_FALSE(engine.HasStream("bob/kinect"));
  EXPECT_FALSE(engine.HasStream("bob/kinect_t"));
  EXPECT_TRUE(engine.HasStream("alice/kinect"));

  // The recovered runtime keeps working: new frames, new sessions, another
  // checkpoint cycle.
  EPL_ASSERT_OK(runtime->PushFrames(alice, SomeFrames(8)));
  EPL_ASSERT_OK(runtime->Flush());
  EPL_ASSERT_OK(runtime->Checkpoint());
  EPL_ASSERT_OK_AND_ASSIGN(SessionId carol, runtime->OpenSession("carol"));
  EXPECT_NE(carol, alice);
  EXPECT_NE(carol, bob);
}

TEST(WorkflowDurabilityTest, SessionIdsNeverRecycleAcrossRecovery) {
  epl::testing::ScopedTempDir dir;
  const GestureRuntimeOptions options = DurableOptions(dir.path());
  SessionId bob = -1;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine, options);
    EPL_ASSERT_OK(runtime.OpenSession("alice").status());
    EPL_ASSERT_OK_AND_ASSIGN(bob, runtime.OpenSession("bob"));
    EPL_ASSERT_OK(runtime.CloseSession(bob));
    EPL_ASSERT_OK(runtime.Flush());
    EPL_ASSERT_OK(runtime.Checkpoint());
  }
  stream::StreamEngine engine;
  EPL_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<GestureRuntime> runtime,
      GestureRuntime::Recover(&engine, options,
                              [](SessionId, const std::string&) {
                                return [](const cep::Detection&) {};
                              }));
  // A new session must not reuse bob's id, even though bob is gone: gates
  // and WAL records encode ids, so recycling one would cross-wire them.
  EPL_ASSERT_OK_AND_ASSIGN(SessionId carol, runtime->OpenSession("carol"));
  EXPECT_GT(carol, bob);
}

TEST(WorkflowDurabilityTest, RecoverFromEmptyDirIsAFreshStart) {
  epl::testing::ScopedTempDir dir;
  const GestureRuntimeOptions options = DurableOptions(dir.path() + "/new");
  stream::StreamEngine engine;
  RecoverStats stats;
  EPL_ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<GestureRuntime> runtime,
      GestureRuntime::Recover(&engine, options,
                              [](SessionId, const std::string&) {
                                return [](const cep::Detection&) {};
                              },
                              &stats));
  EXPECT_EQ(stats.snapshot_seq, 0u);
  EXPECT_EQ(stats.replayed_records, 0u);
  EXPECT_EQ(runtime->num_deployed(), 0u);
  // And it is a perfectly usable durable runtime.
  EPL_ASSERT_OK_AND_ASSIGN(SessionId session, runtime->OpenSession("alice"));
  EPL_ASSERT_OK(runtime->PushFrames(session, SomeFrames(9)));
  EPL_ASSERT_OK(runtime->Checkpoint());
}

TEST(WorkflowDurabilityTest, DurabilityRequiresSharedBackend) {
  epl::testing::ScopedTempDir dir;
  GestureRuntimeOptions options = DurableOptions(dir.path());
  options.backend = RuntimeBackend::kLegacyPerQuery;
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine, options);
  Status status = runtime.OpenSession("alice").status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status;
}

TEST(WorkflowDurabilityTest, CheckpointRequiresDurability) {
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine);  // no durability dir
  EXPECT_EQ(runtime.Checkpoint().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace epl::workflow
