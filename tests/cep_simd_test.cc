// Kernel-level equivalence tests for the runtime-dispatched SIMD layer:
// every AVX2 kernel must be bit-identical to the portable scalar table at
// awkward widths (word counts around the 4-word vector boundary, short and
// long rows, unaligned starting offsets), and the dispatch plumbing
// (Active / SetDispatchForTest / EPL_FORCE_SCALAR) must behave. The
// higher-level guarantee -- whole detection streams identical across
// dispatch modes -- is pinned by tests/cep_differential_fuzz_test.cc.

#include "cep/simd.h"

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace epl::cep::simd {
namespace {

// Word counts straddling every vector boundary: empty, sub-register,
// exactly one register (4), register + tail, and the 63/64/65 cluster the
// bank actually produces around 4096 predicates.
const size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65};
const size_t kRowCounts[] = {1, 2, 5, 32};

std::vector<uint64_t> RandomWords(Rng* rng, size_t n) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    w = rng->NextUint64();
  }
  return words;
}

class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Available()) {
      GTEST_SKIP() << "AVX2 unavailable; scalar is the only table";
    }
  }
};

TEST_F(SimdKernelTest, AndIntoMatchesScalarAtEveryWidth) {
  Rng rng(0x51D0001);
  for (size_t words : kWordCounts) {
    // offset 1 forces a 32-byte-misaligned start: the kernels must not
    // rely on the aligned storage the bank happens to provide.
    for (size_t offset : {size_t{0}, size_t{1}}) {
      const std::vector<uint64_t> src = RandomWords(&rng, words + offset);
      const std::vector<uint64_t> original = RandomWords(&rng, words + offset);
      std::vector<uint64_t> scalar = original;
      std::vector<uint64_t> avx2 = original;
      ScalarKernels().and_into(scalar.data() + offset, src.data() + offset,
                               words);
      Avx2Kernels().and_into(avx2.data() + offset, src.data() + offset,
                             words);
      EXPECT_EQ(scalar, avx2) << "words=" << words << " offset=" << offset;
    }
  }
}

TEST_F(SimdKernelTest, AndNotIntoMatchesScalarAtEveryWidth) {
  Rng rng(0x51D0002);
  for (size_t words : kWordCounts) {
    for (size_t offset : {size_t{0}, size_t{1}}) {
      const std::vector<uint64_t> src = RandomWords(&rng, words + offset);
      const std::vector<uint64_t> original = RandomWords(&rng, words + offset);
      std::vector<uint64_t> scalar = original;
      std::vector<uint64_t> avx2 = original;
      ScalarKernels().andnot_into(scalar.data() + offset,
                                  src.data() + offset, words);
      Avx2Kernels().andnot_into(avx2.data() + offset, src.data() + offset,
                                words);
      EXPECT_EQ(scalar, avx2) << "words=" << words << " offset=" << offset;
    }
  }
}

TEST_F(SimdKernelTest, AndRowsMatchesScalarAcrossShapes) {
  Rng rng(0x51D0003);
  for (size_t words : kWordCounts) {
    for (size_t rows : kRowCounts) {
      // stride == words exercises the contiguous broadcast fast path;
      // stride > words exercises the strided general path with gap words
      // that must stay untouched.
      for (size_t stride : {words, words + 3}) {
        const std::vector<uint64_t> src = RandomWords(&rng, words);
        const std::vector<uint64_t> original =
            RandomWords(&rng, rows * stride);
        std::vector<uint64_t> scalar = original;
        std::vector<uint64_t> avx2 = original;
        ScalarKernels().and_rows(scalar.data(), stride, rows, src.data(),
                                 words);
        Avx2Kernels().and_rows(avx2.data(), stride, rows, src.data(), words);
        EXPECT_EQ(scalar, avx2)
            << "words=" << words << " rows=" << rows << " stride=" << stride;
      }
    }
  }
}

TEST_F(SimdKernelTest, AndRowsLeavesGapWordsUntouched) {
  Rng rng(0x51D0004);
  const size_t words = 3;
  const size_t stride = 5;
  const size_t rows = 7;
  const std::vector<uint64_t> src = RandomWords(&rng, words);
  const std::vector<uint64_t> original = RandomWords(&rng, rows * stride);
  std::vector<uint64_t> avx2 = original;
  Avx2Kernels().and_rows(avx2.data(), stride, rows, src.data(), words);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t w = words; w < stride; ++w) {
      EXPECT_EQ(avx2[r * stride + w], original[r * stride + w])
          << "gap word clobbered at row " << r << " word " << w;
    }
  }
}

TEST_F(SimdKernelTest, FoldIntoMatchesScalarAcrossSourceCounts) {
  Rng rng(0x51D0006);
  for (size_t words : kWordCounts) {
    for (size_t num_and : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
      for (size_t num_not : {size_t{0}, size_t{1}, size_t{3}}) {
        std::vector<std::vector<uint64_t>> and_storage;
        std::vector<std::vector<uint64_t>> not_storage;
        std::vector<const uint64_t*> and_srcs;
        std::vector<const uint64_t*> not_srcs;
        for (size_t i = 0; i < num_and; ++i) {
          and_storage.push_back(RandomWords(&rng, words));
          and_srcs.push_back(and_storage.back().data());
        }
        for (size_t i = 0; i < num_not; ++i) {
          not_storage.push_back(RandomWords(&rng, words));
          not_srcs.push_back(not_storage.back().data());
        }
        // The fold overwrites dst; pre-fill with garbage to prove it.
        std::vector<uint64_t> scalar = RandomWords(&rng, words);
        std::vector<uint64_t> avx2 = RandomWords(&rng, words);
        ScalarKernels().fold_into(scalar.data(), and_srcs.data(), num_and,
                                  not_srcs.data(), num_not, words);
        Avx2Kernels().fold_into(avx2.data(), and_srcs.data(), num_and,
                                not_srcs.data(), num_not, words);
        EXPECT_EQ(scalar, avx2) << "words=" << words << " and=" << num_and
                                << " not=" << num_not;
        // Reference semantics, independently of the scalar kernel.
        for (size_t w = 0; w < words; ++w) {
          uint64_t want = ~uint64_t{0};
          for (size_t i = 0; i < num_and; ++i) {
            want &= and_storage[i][w];
          }
          for (size_t i = 0; i < num_not; ++i) {
            want &= ~not_storage[i][w];
          }
          EXPECT_EQ(avx2[w], want) << "w=" << w;
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, InlineHelpersMatchKernelsAcrossTheThreshold) {
  // The call-site helpers (AndNotInto / AndRows / GateColumn / FoldInto)
  // run an inline loop below kInlineFoldWords of work and dispatch above
  // it; both branches must agree with the raw kernel table.
  Rng rng(0x51D0007);
  for (const Kernels* kernels : {&ScalarKernels(), &Avx2Kernels()}) {
    for (size_t words : {size_t{3}, size_t{20}, size_t{40}, size_t{65}}) {
      const std::vector<uint64_t> src = RandomWords(&rng, words);
      const std::vector<uint64_t> original = RandomWords(&rng, words);
      std::vector<uint64_t> helper = original;
      std::vector<uint64_t> direct = original;
      AndNotInto(*kernels, helper.data(), src.data(), words);
      kernels->andnot_into(direct.data(), src.data(), words);
      EXPECT_EQ(helper, direct) << "words=" << words;
    }
    for (size_t count : {size_t{1}, size_t{32}, size_t{65}, size_t{130}}) {
      const size_t stride = 4;
      const std::vector<uint64_t> rows = RandomWords(&rng, count * stride);
      const uint64_t mask = rng.NextUint64() & rng.NextUint64();
      const size_t out_words = (count + 63) / 64;
      std::vector<uint64_t> helper_out(out_words, ~uint64_t{0});
      std::vector<uint64_t> direct_out(out_words, ~uint64_t{0});
      const bool helper_any = GateColumn(*kernels, rows.data(), stride, count,
                                         1, mask, helper_out.data());
      const bool direct_any = kernels->gate_column(
          rows.data(), stride, count, 1, mask, direct_out.data());
      EXPECT_EQ(helper_out, direct_out) << "count=" << count;
      EXPECT_EQ(helper_any, direct_any) << "count=" << count;
    }
  }
}

TEST_F(SimdKernelTest, GateColumnMatchesScalarAcrossShapes) {
  Rng rng(0x51D0005);
  // Row counts around the out-word boundary and the 4-row gather step.
  const size_t counts[] = {1, 3, 4, 5, 31, 32, 63, 64, 65, 130};
  for (size_t stride : {size_t{1}, size_t{4}, size_t{7}}) {
    for (size_t count : counts) {
      const std::vector<uint64_t> rows = RandomWords(&rng, count * stride);
      for (uint32_t word = 0; word < stride; word += stride > 1 ? 3 : 1) {
        // A sparse mask so both zero and non-zero cells occur.
        const uint64_t mask = rng.NextUint64() & rng.NextUint64() &
                              rng.NextUint64() & rng.NextUint64();
        const size_t out_words = (count + 63) / 64;
        std::vector<uint64_t> scalar_out(out_words, ~uint64_t{0});
        std::vector<uint64_t> avx2_out(out_words, ~uint64_t{0});
        const bool scalar_any = ScalarKernels().gate_column(
            rows.data(), stride, count, word, mask, scalar_out.data());
        const bool avx2_any = Avx2Kernels().gate_column(
            rows.data(), stride, count, word, mask, avx2_out.data());
        EXPECT_EQ(scalar_out, avx2_out)
            << "stride=" << stride << " count=" << count << " word=" << word;
        EXPECT_EQ(scalar_any, avx2_any);
        // Reference semantics, independently of the scalar kernel.
        bool expect_any = false;
        for (size_t b = 0; b < count; ++b) {
          const bool bit = (avx2_out[b >> 6] >> (b & 63)) & 1;
          const bool want = (rows[b * stride + word] & mask) != 0;
          EXPECT_EQ(bit, want) << "b=" << b;
          expect_any |= want;
        }
        EXPECT_EQ(avx2_any, expect_any);
        // Tail bits beyond count must be zeroed (callers ctz over them).
        if (count % 64 != 0) {
          EXPECT_EQ(avx2_out.back() >> (count % 64), 0u);
        }
      }
    }
  }
}

TEST(SimdDispatchTest, ActiveMatchesAvailability) {
  const char* forced = std::getenv("EPL_FORCE_SCALAR");
  const bool force_scalar =
      forced != nullptr && forced[0] != '\0' &&
      !(forced[0] == '0' && forced[1] == '\0');
  if (force_scalar || !Avx2Available()) {
    EXPECT_EQ(Active().dispatch, Dispatch::kScalar);
    EXPECT_STREQ(DispatchName(), "scalar");
  } else {
    EXPECT_EQ(Active().dispatch, Dispatch::kAvx2);
    EXPECT_STREQ(DispatchName(), "avx2");
  }
}

TEST(SimdDispatchTest, SetDispatchForTestOverridesAndRestores) {
  const Dispatch ambient = Active().dispatch;
  SetDispatchForTest(Dispatch::kScalar);
  EXPECT_EQ(Active().dispatch, Dispatch::kScalar);
  EXPECT_STREQ(DispatchName(), "scalar");
  if (Avx2Available()) {
    SetDispatchForTest(Dispatch::kAvx2);
    EXPECT_EQ(Active().dispatch, Dispatch::kAvx2);
    EXPECT_STREQ(DispatchName(), "avx2");
  }
  SetDispatchForTest(std::nullopt);
  EXPECT_EQ(Active().dispatch, ambient);
}

TEST(SimdDispatchTest, WordVectorIs32ByteAligned) {
  WordVector v(65, 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 32, 0u);
}

}  // namespace
}  // namespace epl::cep::simd
