// GestureRuntime: the session layer multiplexing the learning workflow
// over the shared matching runtime.
//
// The headline property is the DIFFERENTIAL GUARANTEE of the refactor: a
// full interactive controller session -- control gestures, three learned
// gestures, one mid-session re-learn, all driven purely by performed
// gestures -- produces bit-identical detections whether the controller's
// queries run on the legacy per-query deployment, on one fused operator,
// or on a sharded engine at 1 or 4 shards.

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cep_workload_test_util.h"
#include "gesturedb/store.h"
#include "kinect/sensor.h"
#include "test_util.h"
#include "workflow/controller.h"
#include "workflow/gesture_runtime.h"

namespace epl::workflow {
namespace {

using cep::testing::DetectionRecord;
using cep::testing::Recorder;
using cep::testing::Train;
using cep::testing::Workload;
using kinect::GestureShapes;
using kinect::JointId;
using kinect::SkeletonFrame;
using kinect::UserProfile;

// ---------------------------------------------------------------------------
// Full-session differential across backends.

/// One scripted interactive session: the frame stream plus controller
/// actions to fire at exact frame indices. Built once, replayed against
/// every backend.
struct SessionScript {
  std::vector<SkeletonFrame> frames;
  std::vector<std::pair<size_t, std::function<Status(LearningController&)>>>
      actions;
};

SessionScript BuildScript() {
  SessionScript script;
  UserProfile user;
  kinect::SessionBuilder builder(user, 4242);
  auto act = [&](std::function<Status(LearningController&)> action) {
    script.actions.emplace_back(builder.frames().size(), std::move(action));
  };
  auto learn = [&](const std::string& name, const kinect::GestureShape& shape,
                   int samples) {
    act([name](LearningController& controller) {
      return controller.BeginGesture(name, {JointId::kRightHand,
                                            JointId::kLeftHand});
    });
    builder.Idle(0.5);
    for (int i = 0; i < samples; ++i) {
      builder.Perform(GestureShapes::Wave());  // control: arm recording
      builder.Perform(shape, /*dwell_s=*/0.9);
      builder.Idle(0.4);
    }
    builder.Perform(GestureShapes::TwoHandSwipe());  // control: finish
    builder.Idle(0.5);
    builder.Perform(shape, 0.4);  // testing-phase detection
    builder.Idle(0.5);
  };

  learn("g_swipe", GestureShapes::SwipeRight(), 2);
  learn("g_raise", GestureShapes::RaiseHand(), 2);
  learn("g_push", GestureShapes::PushForward(), 2);
  // Re-learn the second gesture mid-session: the live query hot-swaps.
  learn("g_raise", GestureShapes::RaiseHand(), 1);
  // Testing tail exercising every live gesture.
  builder.Perform(GestureShapes::SwipeRight(), 0.4);
  builder.Idle(0.4);
  builder.Perform(GestureShapes::RaiseHand(), 0.4);
  builder.Idle(0.4);
  builder.Perform(GestureShapes::PushForward(), 0.4);
  builder.Idle(0.4);
  script.frames = builder.TakeFrames();
  return script;
}

struct SessionResult {
  std::vector<DetectionRecord> detections;
  std::vector<std::string> deployed_events;  // on_deployed, in order
  std::vector<std::string> statuses;
  int samples = 0;
  ControllerPhase phase = ControllerPhase::kIdle;

  bool operator==(const SessionResult& other) const {
    return detections == other.detections &&
           deployed_events == other.deployed_events &&
           statuses == other.statuses && samples == other.samples &&
           phase == other.phase;
  }
};

SessionResult RunSession(const SessionScript& script,
                         const GestureRuntimeOptions& runtime_options) {
  SessionResult result;
  stream::StreamEngine engine;
  ControllerConfig config;
  config.runtime = runtime_options;
  ControllerEvents events;
  events.on_status = [&](const std::string& s) {
    result.statuses.push_back(s);
  };
  events.on_deployed = [&](const std::string& name, const std::string&) {
    result.deployed_events.push_back(name);
  };
  events.on_sample = [&](int index, int) { result.samples = index; };
  events.on_detection = [&](const cep::Detection& d) {
    result.detections.push_back(
        DetectionRecord{d.name, d.time, d.pose_times});
  };
  LearningController controller(&engine, nullptr, config, events);
  EPL_CHECK(controller.Init().ok());
  size_t next_action = 0;
  for (size_t i = 0; i < script.frames.size(); ++i) {
    while (next_action < script.actions.size() &&
           script.actions[next_action].first == i) {
      Status status = script.actions[next_action].second(controller);
      EPL_CHECK(status.ok()) << status;
      ++next_action;
    }
    Status status = controller.PushFrame(script.frames[i]);
    EPL_CHECK(status.ok()) << status;
  }
  result.phase = controller.phase();
  return result;
}

// The acceptance differential: control gestures + 3 learned gestures + one
// re-learn, bit-identical on the shared runtime vs the legacy per-query
// deployment, at 1 shard and 4 shards.
TEST(GestureRuntimeDifferentialTest, FullControllerSessionAllBackends) {
  const SessionScript script = BuildScript();

  GestureRuntimeOptions legacy;
  legacy.backend = RuntimeBackend::kLegacyPerQuery;
  const SessionResult baseline = RunSession(script, legacy);

  // The session actually exercised the workflow: every gesture was
  // deployed (g_raise twice -- the re-learn), detections fired.
  EXPECT_EQ(baseline.deployed_events,
            (std::vector<std::string>{"g_swipe", "g_raise", "g_push",
                                      "g_raise"}));
  EXPECT_EQ(baseline.phase, ControllerPhase::kTesting);
  EXPECT_FALSE(baseline.detections.empty());
  std::map<std::string, int> per_gesture;
  for (const DetectionRecord& record : baseline.detections) {
    ++per_gesture[record.name];
  }
  EXPECT_GE(per_gesture["g_swipe"], 1);
  EXPECT_GE(per_gesture["g_raise"], 1);
  EXPECT_GE(per_gesture["g_push"], 1);

  GestureRuntimeOptions fused;
  fused.backend = RuntimeBackend::kFused;
  EXPECT_TRUE(RunSession(script, fused) == baseline)
      << "fused runtime diverged from legacy per-query deployment";

  GestureRuntimeOptions sharded1;
  sharded1.backend = RuntimeBackend::kSharded;
  sharded1.num_shards = 1;
  EXPECT_TRUE(RunSession(script, sharded1) == baseline)
      << "1-shard runtime diverged from legacy per-query deployment";

  GestureRuntimeOptions sharded4;
  sharded4.backend = RuntimeBackend::kSharded;
  sharded4.num_shards = 4;
  EXPECT_TRUE(RunSession(script, sharded4) == baseline)
      << "4-shard runtime diverged from legacy per-query deployment";
}

// ---------------------------------------------------------------------------
// Multi-session: one shared runtime, per-session routing and isolation.

/// Merges per-user frame scripts into one global timestamp-ordered push
/// sequence (the merged session stream is one timeline). Stable: ties and
/// within-session order keep the listed session order.
std::vector<std::pair<SessionId, SkeletonFrame>> MergeByTime(
    const std::vector<std::pair<SessionId, std::vector<SkeletonFrame>>>&
        per_user) {
  std::vector<std::pair<SessionId, SkeletonFrame>> merged;
  for (const auto& [session, frames] : per_user) {
    for (const SkeletonFrame& frame : frames) {
      merged.emplace_back(session, frame);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.timestamp < b.second.timestamp;
                   });
  return merged;
}

TEST(GestureRuntimeSessionTest, SessionsShareOneRuntimeWithIsolation) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  const core::GestureDefinition raise = Train(GestureShapes::RaiseHand(), 20);

  UserProfile user;
  kinect::SessionBuilder alice_builder(user, 501);
  alice_builder.Idle(0.4).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.5);
  kinect::SessionBuilder bob_builder(user, 502);
  bob_builder.Idle(0.5).Perform(GestureShapes::RaiseHand(), 0.3).Idle(0.4);

  // Reference: each user on a private runtime.
  std::vector<DetectionRecord> alice_solo, bob_solo;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK_AND_ASSIGN(SessionId alice, runtime.OpenSession("alice"));
    EPL_ASSERT_OK(runtime.Deploy(alice, swipe, Recorder(&alice_solo)));
    EPL_ASSERT_OK(runtime.PushFrames(alice, alice_builder.frames()));
  }
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK_AND_ASSIGN(SessionId bob, runtime.OpenSession("bob"));
    EPL_ASSERT_OK(runtime.Deploy(bob, raise, Recorder(&bob_solo)));
    EPL_ASSERT_OK(runtime.PushFrames(bob, bob_builder.frames()));
  }
  ASSERT_FALSE(alice_solo.empty());
  ASSERT_FALSE(bob_solo.empty());

  // Both users on ONE shared runtime, frames interleaved: detections are
  // routed per session and identical to the private runs.
  std::vector<DetectionRecord> alice_shared, bob_shared;
  stream::StreamEngine engine;
  GestureRuntime runtime(&engine);
  EPL_ASSERT_OK_AND_ASSIGN(SessionId alice, runtime.OpenSession("alice"));
  EPL_ASSERT_OK_AND_ASSIGN(SessionId bob, runtime.OpenSession("bob"));
  // Both sessions deploy BOTH gestures: isolation must come from session
  // routing, not from disjoint query sets.
  EPL_ASSERT_OK(runtime.Deploy(alice, swipe, Recorder(&alice_shared)));
  EPL_ASSERT_OK(runtime.Deploy(alice, raise, Recorder(&alice_shared)));
  EPL_ASSERT_OK(runtime.Deploy(bob, swipe, Recorder(&bob_shared)));
  EPL_ASSERT_OK(runtime.Deploy(bob, raise, Recorder(&bob_shared)));
  // One shared channel hosts all four queries.
  EXPECT_EQ(runtime.num_channels(), 1u);
  EXPECT_EQ(runtime.num_deployed(), 4u);

  for (const auto& [session, frame] :
       MergeByTime({{alice, alice_builder.frames()},
                    {bob, bob_builder.frames()}})) {
    EPL_ASSERT_OK(runtime.PushFrame(session, frame));
  }
  // Alice deployed `raise` too but never performed it; bob vice versa --
  // the private-run reference (which only had the performed gesture) must
  // match exactly, proving no cross-session leakage.
  EXPECT_EQ(alice_shared, alice_solo);
  EXPECT_EQ(bob_shared, bob_solo);

  // Closing a session retires its queries; the other session is untouched.
  EPL_ASSERT_OK(runtime.CloseSession(bob));
  EXPECT_EQ(runtime.num_deployed(), 2u);
  EXPECT_TRUE(runtime.IsDeployed(alice, "swipe_right"));
  EXPECT_FALSE(runtime.IsDeployed(bob, "raise_hand"));
}

// Closing a session from inside one of its own detection callbacks takes
// effect synchronously for deploy purposes (a close-then-deploy sequence
// cannot invert), while the teardown lands at the next event boundary.
TEST(GestureRuntimeSessionTest, CloseSessionFromCallbackRejectsDeploys) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  const core::GestureDefinition raise = Train(GestureShapes::RaiseHand(), 20);
  UserProfile user;
  kinect::SessionBuilder builder(user, 501);
  builder.Idle(0.4).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.5);

  stream::StreamEngine engine;
  GestureRuntime runtime(&engine);
  EPL_ASSERT_OK_AND_ASSIGN(SessionId id, runtime.OpenSession("u"));
  int detections = 0;
  EPL_ASSERT_OK(runtime.Deploy(
      id, swipe, [&](const cep::Detection&) {
        ++detections;
        if (detections > 1) {
          return;
        }
        EPL_CHECK(runtime.CloseSession(id).ok());
        Status rejected = runtime.Deploy(id, raise, nullptr);
        EXPECT_EQ(rejected.code(), StatusCode::kNotFound);
      }));
  // Push until the mid-callback close makes the session reject frames.
  Status push_status = OkStatus();
  for (const SkeletonFrame& frame : builder.frames()) {
    push_status = runtime.PushFrame(id, frame);
    if (!push_status.ok()) {
      break;
    }
  }
  EXPECT_GE(detections, 1);
  EXPECT_EQ(push_status.code(), StatusCode::kNotFound);
  // The deferred teardown ran at the next frame boundary.
  EXPECT_EQ(runtime.num_deployed(), 0u);
  EXPECT_FALSE(runtime.IsDeployed(id, "swipe_right"));
}

TEST(GestureRuntimeSessionTest, ShardedSessionsDetectLikeFused) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  UserProfile user;
  kinect::SessionBuilder builder(user, 501);
  builder.Idle(0.4).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.5);

  std::vector<DetectionRecord> fused_records, sharded_records;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK_AND_ASSIGN(SessionId id, runtime.OpenSession("u"));
    EPL_ASSERT_OK(runtime.Deploy(id, swipe, Recorder(&fused_records)));
    EPL_ASSERT_OK(runtime.PushFrames(id, builder.frames()));
    EPL_ASSERT_OK(runtime.Flush());
  }
  {
    stream::StreamEngine engine;
    GestureRuntimeOptions options;
    options.backend = RuntimeBackend::kSharded;
    options.num_shards = 3;
    GestureRuntime runtime(&engine, options);
    EPL_ASSERT_OK_AND_ASSIGN(SessionId id, runtime.OpenSession("u"));
    EPL_ASSERT_OK(runtime.Deploy(id, swipe, Recorder(&sharded_records)));
    EPL_ASSERT_OK(runtime.PushFrames(id, builder.frames()));
    EPL_ASSERT_OK(runtime.Flush());
  }
  EXPECT_EQ(sharded_records, fused_records);
  EXPECT_FALSE(fused_records.empty());
}

TEST(GestureRuntimeSessionTest, ResizeShardsMidStreamKeepsDetections) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  UserProfile user;
  kinect::SessionBuilder builder(user, 501);
  builder.Idle(0.4).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.5);
  const std::vector<SkeletonFrame>& frames = builder.frames();

  std::vector<DetectionRecord> fused_records, resized_records;
  {
    stream::StreamEngine engine;
    GestureRuntime runtime(&engine);
    EPL_ASSERT_OK_AND_ASSIGN(SessionId id, runtime.OpenSession("u"));
    EPL_ASSERT_OK(runtime.Deploy(id, swipe, Recorder(&fused_records)));
    EPL_ASSERT_OK(runtime.PushFrames(id, frames));
    EPL_ASSERT_OK(runtime.Flush());
    // ResizeShards is a sharded-backend control.
    EXPECT_EQ(runtime.ResizeShards(2).code(),
              StatusCode::kFailedPrecondition);
  }
  {
    stream::StreamEngine engine;
    GestureRuntimeOptions options;
    options.backend = RuntimeBackend::kSharded;
    options.num_shards = 1;
    options.work_stealing = true;
    GestureRuntime runtime(&engine, options);
    EPL_ASSERT_OK_AND_ASSIGN(SessionId id, runtime.OpenSession("u"));
    EPL_ASSERT_OK(runtime.Deploy(id, swipe, Recorder(&resized_records)));
    const size_t half = frames.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      EPL_ASSERT_OK(runtime.PushFrame(id, frames[i]));
    }
    // Grow the fleet mid-gesture; the matcher migrates with its partial
    // runs, so detections spanning the resize must still fire.
    EPL_ASSERT_OK(runtime.ResizeShards(3));
    for (size_t i = half; i < frames.size(); ++i) {
      EPL_ASSERT_OK(runtime.PushFrame(id, frames[i]));
    }
    EPL_ASSERT_OK(runtime.Flush());
  }
  EXPECT_EQ(resized_records, fused_records);
  EXPECT_FALSE(fused_records.empty());
}

// ---------------------------------------------------------------------------
// Boot-time bulk load from the gesture store.

TEST(GestureRuntimeStoreTest, LoadStoreDeploysAllStoredGestures) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(gesturedb::GestureStore store,
                           gesturedb::GestureStore::Open(dir.path()));
  core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  core::GestureDefinition raise = Train(GestureShapes::RaiseHand(), 20);
  swipe.source_stream = "kinect";
  raise.source_stream = "kinect";
  EPL_ASSERT_OK(store.Put(swipe));
  EPL_ASSERT_OK(store.Put(raise));
  // A poisoned store entry under a reserved control name must be skipped,
  // never hot-swapping a live control query.
  core::GestureDefinition poisoned = swipe;
  poisoned.name = kControlWaveName;
  EPL_ASSERT_OK(store.Put(poisoned));

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  GestureRuntime runtime(&engine);
  std::vector<DetectionRecord> records;
  EPL_ASSERT_OK_AND_ASSIGN(int loaded,
                           runtime.LoadStore(store, Recorder(&records)));
  EXPECT_EQ(loaded, 2);
  EXPECT_FALSE(runtime.IsDeployed(kControlWaveName));
  EXPECT_EQ(runtime.DeployedGestures(),
            (std::vector<std::string>{"raise_hand", "swipe_right"}));
  // All loaded gestures share ONE fused operator.
  EXPECT_EQ(engine.deployment_count(), 1u);

  for (const stream::Event& event : Workload(77)) {
    EPL_ASSERT_OK(engine.Push("kinect", event));
  }
  bool saw_swipe = false;
  bool saw_raise = false;
  for (const DetectionRecord& record : records) {
    saw_swipe |= record.name == "swipe_right";
    saw_raise |= record.name == "raise_hand";
  }
  EXPECT_TRUE(saw_swipe);
  EXPECT_TRUE(saw_raise);
}

// A controller booting against a non-empty store redeploys the stored
// gestures and reports their detections in the idle phase.
TEST(GestureRuntimeStoreTest, ControllerBootLoadsStoredGestures) {
  testing::ScopedTempDir dir;
  EPL_ASSERT_OK_AND_ASSIGN(gesturedb::GestureStore store,
                           gesturedb::GestureStore::Open(dir.path()));
  core::GestureDefinition stored = Train(GestureShapes::SwipeRight(), 10);
  // The controller feeds raw frames through its kinect_t view.
  stored.source_stream = transform::kKinectTViewName;
  EPL_ASSERT_OK(store.Put(stored));

  stream::StreamEngine engine;
  std::vector<cep::Detection> detections;
  ControllerEvents events;
  events.on_detection = [&](const cep::Detection& d) {
    detections.push_back(d);
  };
  LearningController controller(&engine, &store, ControllerConfig(), events);
  EPL_ASSERT_OK(controller.Init());
  EXPECT_EQ(controller.deployed_gestures(),
            (std::vector<std::string>{"swipe_right"}));

  UserProfile user;
  kinect::SessionBuilder builder(user, 88);
  builder.Idle(0.4).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.5);
  EPL_ASSERT_OK(controller.PushFrames(builder.frames()));
  ASSERT_FALSE(detections.empty());
  EXPECT_EQ(detections[0].name, "swipe_right");
}

}  // namespace
}  // namespace epl::workflow
