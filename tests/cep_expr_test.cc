#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cep/expr.h"
#include "cep/expr_program.h"
#include "common/rng.h"
#include "stream/schema.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using stream::Schema;

Schema AbSchema() { return Schema({"a", "b"}); }

Event MakeEvent(double a, double b) { return Event(0, {a, b}); }

ExprPtr Bound(ExprPtr expr, const Schema& schema) {
  EPL_CHECK(expr->Bind(schema).ok());
  return expr;
}

TEST(ExprTest, ConstantEval) {
  ExprPtr e = Expr::Constant(3.5);
  EXPECT_DOUBLE_EQ(e->Eval(MakeEvent(0, 0)), 3.5);
  EXPECT_EQ(e->ToString(), "3.5");
}

TEST(ExprTest, FieldEvalAfterBind) {
  ExprPtr e = Bound(Expr::Field("b"), AbSchema());
  EXPECT_DOUBLE_EQ(e->Eval(MakeEvent(1, 2)), 2.0);
  EXPECT_EQ(e->ToString(), "b");
}

TEST(ExprTest, BindFailsOnUnknownField) {
  ExprPtr e = Expr::Field("missing");
  Status s = e->Bind(AbSchema());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(e->is_bound());
}

TEST(ExprTest, ArithmeticEval) {
  // (a + 2) * b - 1
  ExprPtr e = Expr::Binary(
      BinaryOp::kSub,
      Expr::Binary(BinaryOp::kMul,
                   Expr::Binary(BinaryOp::kAdd, Expr::Field("a"),
                                Expr::Constant(2)),
                   Expr::Field("b")),
      Expr::Constant(1));
  e = Bound(std::move(e), AbSchema());
  EXPECT_DOUBLE_EQ(e->Eval(MakeEvent(3, 4)), 19.0);
}

TEST(ExprTest, ComparisonProducesZeroOrOne) {
  ExprPtr lt = Bound(
      Expr::Binary(BinaryOp::kLt, Expr::Field("a"), Expr::Field("b")),
      AbSchema());
  EXPECT_DOUBLE_EQ(lt->Eval(MakeEvent(1, 2)), 1.0);
  EXPECT_DOUBLE_EQ(lt->Eval(MakeEvent(2, 1)), 0.0);
  EXPECT_DOUBLE_EQ(lt->Eval(MakeEvent(2, 2)), 0.0);
}

TEST(ExprTest, LogicalOps) {
  ExprPtr e = Bound(
      Expr::Binary(BinaryOp::kAnd,
                   Expr::Binary(BinaryOp::kGt, Expr::Field("a"),
                                Expr::Constant(0)),
                   Expr::Binary(BinaryOp::kLt, Expr::Field("b"),
                                Expr::Constant(10))),
      AbSchema());
  EXPECT_TRUE(e->EvalBool(MakeEvent(1, 5)));
  EXPECT_FALSE(e->EvalBool(MakeEvent(-1, 5)));
  EXPECT_FALSE(e->EvalBool(MakeEvent(1, 15)));

  ExprPtr o = Bound(
      Expr::Binary(BinaryOp::kOr,
                   Expr::Binary(BinaryOp::kGt, Expr::Field("a"),
                                Expr::Constant(0)),
                   Expr::Binary(BinaryOp::kGt, Expr::Field("b"),
                                Expr::Constant(0))),
      AbSchema());
  EXPECT_TRUE(o->EvalBool(MakeEvent(1, -1)));
  EXPECT_TRUE(o->EvalBool(MakeEvent(-1, 1)));
  EXPECT_FALSE(o->EvalBool(MakeEvent(-1, -1)));
}

TEST(ExprTest, UnaryOps) {
  ExprPtr neg = Bound(Expr::Unary(UnaryOp::kNegate, Expr::Field("a")),
                      AbSchema());
  EXPECT_DOUBLE_EQ(neg->Eval(MakeEvent(7, 0)), -7.0);
  ExprPtr nt = Bound(Expr::Unary(UnaryOp::kNot, Expr::Field("a")), AbSchema());
  EXPECT_DOUBLE_EQ(nt->Eval(MakeEvent(0, 0)), 1.0);
  EXPECT_DOUBLE_EQ(nt->Eval(MakeEvent(3, 0)), 0.0);
}

TEST(ExprTest, FunctionCalls) {
  ExprPtr abs_expr = Bound(Expr::Abs(Expr::Field("a")), AbSchema());
  EXPECT_DOUBLE_EQ(abs_expr->Eval(MakeEvent(-4, 0)), 4.0);

  std::vector<ExprPtr> args;
  args.push_back(Expr::Field("a"));
  args.push_back(Expr::Field("b"));
  ExprPtr mx = Bound(Expr::Call("max", std::move(args)), AbSchema());
  EXPECT_DOUBLE_EQ(mx->Eval(MakeEvent(3, 9)), 9.0);
}

TEST(ExprTest, BindRejectsUnknownFunction) {
  std::vector<ExprPtr> args;
  args.push_back(Expr::Constant(1));
  ExprPtr e = Expr::Call("no_such_fn", std::move(args));
  EXPECT_EQ(e->Bind(AbSchema()).code(), StatusCode::kNotFound);
}

TEST(ExprTest, BindRejectsWrongArity) {
  std::vector<ExprPtr> args;
  args.push_back(Expr::Constant(1));
  args.push_back(Expr::Constant(2));
  ExprPtr e = Expr::Call("abs", std::move(args));
  EXPECT_EQ(e->Bind(AbSchema()).code(), StatusCode::kInvalidArgument);
}

TEST(ExprTest, RangePredicateShape) {
  ExprPtr e = Expr::RangePredicate("rHand_x", 400.0, 50.0);
  EXPECT_EQ(e->ToString(), "abs(rHand_x - 400) < 50");
  ExprPtr neg_center = Expr::RangePredicate("rHand_z", -120.0, 50.0);
  EXPECT_EQ(neg_center->ToString(), "abs(rHand_z + 120) < 50");
}

TEST(ExprTest, RangePredicateEval) {
  Schema schema({"rHand_x"});
  ExprPtr e = Bound(Expr::RangePredicate("rHand_x", 400.0, 50.0), schema);
  EXPECT_TRUE(e->EvalBool(Event(0, {420.0})));
  EXPECT_TRUE(e->EvalBool(Event(0, {360.0})));
  EXPECT_FALSE(e->EvalBool(Event(0, {451.0})));
  EXPECT_FALSE(e->EvalBool(Event(0, {349.0})));
}

TEST(ExprTest, AndOfTerms) {
  std::vector<ExprPtr> terms;
  terms.push_back(Expr::Binary(BinaryOp::kGt, Expr::Field("a"),
                               Expr::Constant(0)));
  terms.push_back(Expr::Binary(BinaryOp::kGt, Expr::Field("b"),
                               Expr::Constant(0)));
  ExprPtr e = Bound(Expr::And(std::move(terms)), AbSchema());
  EXPECT_TRUE(e->EvalBool(MakeEvent(1, 1)));
  EXPECT_FALSE(e->EvalBool(MakeEvent(1, -1)));
  // Empty conjunction is true.
  ExprPtr empty = Expr::And({});
  EXPECT_TRUE(empty->EvalBool(MakeEvent(0, 0)));
}

TEST(ExprTest, ToStringPrecedence) {
  // (a + b) * 2 needs parens; a + b * 2 does not.
  ExprPtr e1 = Expr::Binary(
      BinaryOp::kMul,
      Expr::Binary(BinaryOp::kAdd, Expr::Field("a"), Expr::Field("b")),
      Expr::Constant(2));
  EXPECT_EQ(e1->ToString(), "(a + b) * 2");
  ExprPtr e2 = Expr::Binary(
      BinaryOp::kAdd, Expr::Field("a"),
      Expr::Binary(BinaryOp::kMul, Expr::Field("b"), Expr::Constant(2)));
  EXPECT_EQ(e2->ToString(), "a + b * 2");
  // Left-associative subtraction: a - (b - 1) keeps parens.
  ExprPtr e3 = Expr::Binary(
      BinaryOp::kSub, Expr::Field("a"),
      Expr::Binary(BinaryOp::kSub, Expr::Field("b"), Expr::Constant(1)));
  EXPECT_EQ(e3->ToString(), "a - (b - 1)");
}

TEST(ExprTest, CloneIsDeepAndPreservesBinding) {
  ExprPtr e = Bound(
      Expr::Binary(BinaryOp::kAdd, Expr::Field("a"), Expr::Field("b")),
      AbSchema());
  ExprPtr clone = e->Clone();
  EXPECT_TRUE(clone->is_bound());
  EXPECT_DOUBLE_EQ(clone->Eval(MakeEvent(2, 3)), 5.0);
  EXPECT_EQ(clone->ToString(), e->ToString());
}

TEST(ExprTest, ReferencedFields) {
  ExprPtr e = Expr::Binary(
      BinaryOp::kAdd,
      Expr::Binary(BinaryOp::kMul, Expr::Field("b"), Expr::Field("a")),
      Expr::Field("a"));
  EXPECT_EQ(e->ReferencedFields(), (std::vector<std::string>{"a", "b"}));
}

TEST(FunctionRegistryTest, RegisterAndLookup) {
  FunctionRegistry& registry = FunctionRegistry::Global();
  EPL_ASSERT_OK_AND_ASSIGN(FunctionRegistry::Entry abs_entry,
                           registry.Lookup("abs"));
  EXPECT_EQ(abs_entry.arity, 1);
  EXPECT_FALSE(registry.Lookup("nope").ok());
  EXPECT_EQ(registry.Register("abs", 1, nullptr).code(),
            StatusCode::kAlreadyExists);
}

TEST(ExprProgramTest, RejectsUnboundExpr) {
  ExprPtr e = Expr::Field("a");
  Result<ExprProgram> program = ExprProgram::Compile(*e);
  EXPECT_EQ(program.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExprProgramTest, EvaluatesSimpleProgram) {
  ExprPtr e = Bound(Expr::RangePredicate("a", 10.0, 2.0), AbSchema());
  EPL_ASSERT_OK_AND_ASSIGN(ExprProgram program, ExprProgram::Compile(*e));
  EXPECT_TRUE(program.EvalBool(MakeEvent(11.0, 0)));
  EXPECT_FALSE(program.EvalBool(MakeEvent(13.0, 0)));
  EXPECT_GT(program.num_instructions(), 0u);
  EXPECT_LE(program.max_stack_depth(), ExprProgram::kMaxStackDepth);
}

// Property test: the compiled program must agree with the tree-walking
// evaluator on randomly generated expressions and events.
class ExprProgramEquivalenceTest : public ::testing::TestWithParam<int> {};

ExprPtr RandomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.3)) {
    if (rng.Bernoulli(0.5)) {
      return Expr::Constant(rng.Uniform(-20, 20));
    }
    return Expr::Field(rng.Bernoulli(0.5) ? "a" : "b");
  }
  switch (rng.UniformInt(0, 3)) {
    case 0: {
      static const BinaryOp kOps[] = {
          BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kLt,
          BinaryOp::kLe,  BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kEq,
          BinaryOp::kNe,  BinaryOp::kAnd, BinaryOp::kOr};
      BinaryOp op = kOps[rng.UniformInt(0, 10)];
      return Expr::Binary(op, RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    }
    case 1:
      return Expr::Unary(rng.Bernoulli(0.5) ? UnaryOp::kNegate : UnaryOp::kNot,
                         RandomExpr(rng, depth - 1));
    case 2:
      return Expr::Abs(RandomExpr(rng, depth - 1));
    default: {
      std::vector<ExprPtr> args;
      args.push_back(RandomExpr(rng, depth - 1));
      args.push_back(RandomExpr(rng, depth - 1));
      return Expr::Call(rng.Bernoulli(0.5) ? "min" : "max", std::move(args));
    }
  }
}

TEST_P(ExprProgramEquivalenceTest, CompiledMatchesTreeWalk) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  ExprPtr expr = RandomExpr(rng, 4);
  EPL_ASSERT_OK(expr->Bind(AbSchema()));
  EPL_ASSERT_OK_AND_ASSIGN(ExprProgram program, ExprProgram::Compile(*expr));
  for (int i = 0; i < 50; ++i) {
    Event event = MakeEvent(rng.Uniform(-30, 30), rng.Uniform(-30, 30));
    double tree = expr->Eval(event);
    double compiled = program.Eval(event);
    bool both_nan = std::isnan(tree) && std::isnan(compiled);
    EXPECT_TRUE(both_nan || tree == compiled)
        << expr->ToString() << " tree=" << tree << " compiled=" << compiled;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomExprs, ExprProgramEquivalenceTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace epl::cep
