#include <cmath>

#include <gtest/gtest.h>

#include "kinect/body_model.h"
#include "kinect/gesture_shapes.h"
#include "kinect/sensor.h"
#include "kinect/skeleton.h"
#include "kinect/synthesizer.h"
#include "kinect/trace_io.h"
#include "stream/operators.h"
#include "test_util.h"

namespace epl::kinect {
namespace {

MotionParams NoiselessParams() {
  MotionParams params;
  params.noise_stddev_mm = 0.0;
  params.amplitude_jitter = 0.0;
  params.time_warp = 0.0;
  params.sway_mm = 0.0;
  return params;
}

TEST(SkeletonTest, JointNamesRoundTrip) {
  for (JointId joint : AllJoints()) {
    EPL_ASSERT_OK_AND_ASSIGN(JointId parsed, JointFromName(JointName(joint)));
    EXPECT_EQ(parsed, joint);
  }
  EXPECT_FALSE(JointFromName("noSuchJoint").ok());
}

TEST(SkeletonTest, SchemaHas46Fields) {
  const stream::Schema& schema = KinectSchema();
  EXPECT_EQ(schema.num_fields(), 1 + 3 * kNumJoints);
  EXPECT_TRUE(schema.HasField("player"));
  EXPECT_TRUE(schema.HasField("rHand_x"));
  EXPECT_TRUE(schema.HasField("torso_z"));
  EXPECT_TRUE(schema.HasField("lFoot_y"));
}

TEST(SkeletonTest, FrameEventRoundTrip) {
  SkeletonFrame frame;
  frame.timestamp = 42 * kMillisecond;
  frame.player = 2;
  for (int i = 0; i < kNumJoints; ++i) {
    frame.joints[i] = Vec3(i * 1.5, -i * 2.0, 1000.0 + i);
  }
  stream::Event event = FrameToEvent(frame);
  EXPECT_EQ(event.values.size(), 46u);
  EPL_ASSERT_OK_AND_ASSIGN(SkeletonFrame back, FrameFromEvent(event));
  EXPECT_EQ(back.timestamp, frame.timestamp);
  EXPECT_EQ(back.player, 2);
  for (int i = 0; i < kNumJoints; ++i) {
    EXPECT_TRUE(back.joints[i].ApproxEquals(frame.joints[i]));
  }
}

TEST(SkeletonTest, FrameFromBadEventFails) {
  stream::Event event(0, {1.0, 2.0});
  EXPECT_FALSE(FrameFromEvent(event).ok());
}

TEST(BodyModelTest, NeutralFramePlausible) {
  UserProfile profile;
  BodyModel model(profile);
  SkeletonFrame frame = model.NeutralFrame(0);
  // Torso at the configured position.
  EXPECT_TRUE(frame.joint(JointId::kTorso)
                  .ApproxEquals(profile.torso_position, 1e-9));
  // Head above torso, feet below.
  EXPECT_GT(frame.joint(JointId::kHead).y, frame.joint(JointId::kTorso).y);
  EXPECT_LT(frame.joint(JointId::kLeftFoot).y,
            frame.joint(JointId::kLeftKnee).y);
  // Right side at larger x than left when facing the camera.
  EXPECT_GT(frame.joint(JointId::kRightShoulder).x,
            frame.joint(JointId::kLeftShoulder).x);
}

TEST(BodyModelTest, SizeFactorScalesOffsets) {
  UserProfile adult;
  UserProfile child;
  child.height_mm = 1200.0;
  BodyModel adult_model(adult);
  BodyModel child_model(child);
  EXPECT_NEAR(child_model.size_factor(), 1200.0 / 1750.0, 1e-12);
  Vec3 adult_head = adult_model.NeutralOffset(JointId::kHead);
  Vec3 child_head = child_model.NeutralOffset(JointId::kHead);
  EXPECT_NEAR(child_head.y / adult_head.y, child_model.size_factor(), 1e-9);
  EXPECT_LT(child_model.forearm_length(), adult_model.forearm_length());
}

TEST(BodyModelTest, PoseFrameKeepsForearmRigid) {
  UserProfile profile;
  BodyModel model(profile);
  GestureShape shape = GestureShapes::SwipeRight();
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    SkeletonFrame frame = model.PoseFrame(0, shape.right_path(t),
                                          shape.left_path(t));
    double forearm = frame.joint(JointId::kRightHand)
                         .DistanceTo(frame.joint(JointId::kRightElbow));
    EXPECT_NEAR(forearm, model.forearm_length(), 1e-6) << "t=" << t;
    double upper = frame.joint(JointId::kRightElbow)
                       .DistanceTo(frame.joint(JointId::kRightShoulder));
    EXPECT_NEAR(upper, model.upper_arm_length(), 1e-6) << "t=" << t;
  }
}

TEST(BodyModelTest, UnreachableHandClampedToFullExtension) {
  UserProfile profile;
  BodyModel model(profile);
  SkeletonFrame frame = model.PoseFrame(0, Vec3(5000, 0, 0),
                                        NeutralLeftHandOffset());
  double reach = model.upper_arm_length() + model.forearm_length();
  double dist = frame.joint(JointId::kRightHand)
                    .DistanceTo(frame.joint(JointId::kRightShoulder));
  EXPECT_LE(dist, reach + 1e-6);
  EXPECT_NEAR(dist, reach, 1e-3);
}

TEST(BodyModelTest, YawRotatesWholeBody) {
  UserProfile facing;
  UserProfile turned;
  turned.yaw_rad = M_PI / 2;
  BodyModel facing_model(facing);
  BodyModel turned_model(turned);
  SkeletonFrame f0 = facing_model.NeutralFrame(0);
  SkeletonFrame f90 = turned_model.NeutralFrame(0);
  // Shoulder separation is preserved.
  double sep0 = f0.joint(JointId::kRightShoulder)
                    .DistanceTo(f0.joint(JointId::kLeftShoulder));
  double sep90 = f90.joint(JointId::kRightShoulder)
                     .DistanceTo(f90.joint(JointId::kLeftShoulder));
  EXPECT_NEAR(sep0, sep90, 1e-9);
  // After a quarter turn the shoulder axis lies along Z instead of X.
  Vec3 axis = f90.joint(JointId::kRightShoulder) -
              f90.joint(JointId::kLeftShoulder);
  EXPECT_NEAR(axis.x, 0.0, 1e-9);
  EXPECT_GT(std::abs(axis.z), 100.0);
}

TEST(GestureShapesTest, CatalogLookup) {
  for (const std::string& name : GestureShapes::Names()) {
    EPL_ASSERT_OK_AND_ASSIGN(GestureShape shape, GestureShapes::ByName(name));
    EXPECT_EQ(shape.name, name);
    EXPECT_FALSE(shape.InvolvedJoints().empty());
    // Paths are finite over [0, 1].
    for (double t = 0.0; t <= 1.0; t += 0.25) {
      Vec3 r = shape.right_path(t);
      EXPECT_TRUE(std::isfinite(r.x) && std::isfinite(r.y) &&
                  std::isfinite(r.z));
    }
  }
  EXPECT_FALSE(GestureShapes::ByName("bogus").ok());
}

TEST(GestureShapesTest, SwipeRightMovesLaterally) {
  GestureShape shape = GestureShapes::SwipeRight();
  EXPECT_LT(shape.right_path(0.0).x, shape.right_path(1.0).x);
  EXPECT_NEAR(shape.right_path(0.0).y, shape.right_path(1.0).y, 1.0);
}

TEST(GestureShapesTest, TwoHandShapesInvolveBothHands) {
  GestureShape shape = GestureShapes::TwoHandSwipe();
  EXPECT_EQ(shape.InvolvedJoints().size(), 2u);
  // Hands move in opposite lateral directions.
  EXPECT_GT(shape.right_path(1.0).x, shape.right_path(0.0).x);
  EXPECT_LT(shape.left_path(1.0).x, shape.left_path(0.0).x);
}

TEST(SynthesizerTest, DeterministicWithSameSeed) {
  UserProfile profile;
  GestureShape shape = GestureShapes::SwipeRight();
  std::vector<SkeletonFrame> a = SynthesizeSample(profile, shape, 7);
  std::vector<SkeletonFrame> b = SynthesizeSample(profile, shape, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].joint(JointId::kRightHand)
                    .ApproxEquals(b[i].joint(JointId::kRightHand), 1e-12));
  }
}

TEST(SynthesizerTest, DifferentSeedsDiffer) {
  UserProfile profile;
  GestureShape shape = GestureShapes::SwipeRight();
  std::vector<SkeletonFrame> a = SynthesizeSample(profile, shape, 1);
  std::vector<SkeletonFrame> b = SynthesizeSample(profile, shape, 2);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].joint(JointId::kRightHand)
             .ApproxEquals(b[i].joint(JointId::kRightHand), 1e-9)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SynthesizerTest, FramesAt30Hz) {
  UserProfile profile;
  FrameSynthesizer synth(profile, 1, NoiselessParams());
  std::vector<SkeletonFrame> frames = synth.Still(1.0);
  EXPECT_EQ(frames.size(), 30u);
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].timestamp - frames[i - 1].timestamp, kFramePeriod);
  }
}

TEST(SynthesizerTest, StillHoldsPose) {
  UserProfile profile;
  FrameSynthesizer synth(profile, 1, NoiselessParams());
  std::vector<SkeletonFrame> frames = synth.Still(0.5);
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_TRUE(frames[i]
                    .joint(JointId::kRightHand)
                    .ApproxEquals(frames[0].joint(JointId::kRightHand), 1e-9));
  }
}

TEST(SynthesizerTest, GestureTracksShapeEndpoints) {
  UserProfile profile;
  FrameSynthesizer synth(profile, 1, NoiselessParams());
  GestureShape shape = GestureShapes::RaiseHand();
  std::vector<SkeletonFrame> frames = synth.PerformGesture(shape);
  ASSERT_GT(frames.size(), 10u);
  // End pose: hand high above the torso.
  Vec3 end_offset = frames.back().joint(JointId::kRightHand) -
                    frames.back().joint(JointId::kTorso);
  EXPECT_GT(end_offset.y, 350.0);
}

TEST(SynthesizerTest, NoiseMagnitudeMatchesConfig) {
  UserProfile profile;
  MotionParams params = NoiselessParams();
  params.noise_stddev_mm = 8.0;
  FrameSynthesizer noisy(profile, 3, params);
  FrameSynthesizer clean(profile, 3, NoiselessParams());
  std::vector<SkeletonFrame> noisy_frames = noisy.Still(4.0);
  std::vector<SkeletonFrame> clean_frames = clean.Still(4.0);
  double sum_sq = 0.0;
  int count = 0;
  for (size_t i = 0; i < noisy_frames.size(); ++i) {
    Vec3 diff = noisy_frames[i].joint(JointId::kHead) -
                clean_frames[i].joint(JointId::kHead);
    sum_sq += diff.x * diff.x + diff.y * diff.y + diff.z * diff.z;
    count += 3;
  }
  double stddev = std::sqrt(sum_sq / count);
  EXPECT_NEAR(stddev, 8.0, 1.5);
}

TEST(SynthesizerTest, DistractMovesHand) {
  UserProfile profile;
  FrameSynthesizer synth(profile, 5, NoiselessParams());
  std::vector<SkeletonFrame> frames = synth.Distract(2.0);
  ASSERT_GT(frames.size(), 30u);
  double total_path = 0.0;
  for (size_t i = 1; i < frames.size(); ++i) {
    total_path += frames[i]
                      .joint(JointId::kRightHand)
                      .DistanceTo(frames[i - 1].joint(JointId::kRightHand));
  }
  EXPECT_GT(total_path, 300.0);
}

TEST(SessionBuilderTest, SegmentsJoinContinuously) {
  UserProfile profile;
  SessionBuilder builder(profile, 9, NoiselessParams());
  builder.Idle(0.5)
      .Perform(GestureShapes::SwipeRight(), 0.3)
      .Idle(0.5);
  const std::vector<SkeletonFrame>& frames = builder.frames();
  ASSERT_GT(frames.size(), 60u);
  // No teleporting: consecutive right-hand positions move less than 150 mm
  // per 33 ms frame.
  for (size_t i = 1; i < frames.size(); ++i) {
    double step = frames[i]
                      .joint(JointId::kRightHand)
                      .DistanceTo(frames[i - 1].joint(JointId::kRightHand));
    EXPECT_LT(step, 150.0) << "at frame " << i;
  }
  // Timestamps strictly increase.
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GT(frames[i].timestamp, frames[i - 1].timestamp);
  }
}

TEST(SensorTest, PlayFramesIntoEngine) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(RegisterKinectStream(&engine));
  auto sink = std::make_unique<stream::CountingSink>();
  stream::CountingSink* sink_ptr = sink.get();
  EPL_ASSERT_OK(engine.Deploy("kinect", std::move(sink)).status());
  UserProfile profile;
  FrameSynthesizer synth(profile, 1, NoiselessParams());
  EPL_ASSERT_OK(PlayFrames(&engine, synth.Still(1.0)));
  EXPECT_EQ(sink_ptr->count(), 30u);
}

TEST(TraceIoTest, WriteReadRoundTrip) {
  testing::ScopedTempDir dir;
  UserProfile profile;
  FrameSynthesizer synth(profile, 11, NoiselessParams());
  std::vector<SkeletonFrame> frames = synth.Still(0.3);
  std::string path = dir.path() + "/trace.csv";
  EPL_ASSERT_OK(WriteTrace(path, frames));
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<SkeletonFrame> loaded,
                           ReadTrace(path));
  ASSERT_EQ(loaded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, frames[i].timestamp);
    EXPECT_TRUE(loaded[i]
                    .joint(JointId::kRightHand)
                    .ApproxEquals(frames[i].joint(JointId::kRightHand),
                                  0.01));
  }
}

TEST(TraceIoTest, ReadPaperTraceFromDataDir) {
  std::string path = testing::TestDataDir() + "/fig1_swipe_right.csv";
  EPL_ASSERT_OK_AND_ASSIGN(std::vector<stream::Event> events,
                           ReadPaperTrace(path));
  ASSERT_EQ(events.size(), 19u);
  // First row of Fig. 1.
  EXPECT_NEAR(events[0].values[0], 45.21, 1e-9);   // torso_x
  EXPECT_NEAR(events[0].values[3], -38.80, 1e-9);  // rHand_x
  // Timestamps spaced at the 30 Hz frame period.
  EXPECT_EQ(events[1].timestamp - events[0].timestamp, kFramePeriod);
  // Last row.
  EXPECT_NEAR(events.back().values[5], 1997.73, 1e-9);
}

TEST(TraceIoTest, PaperTraceRejectsWrongColumnCount) {
  Result<std::vector<stream::Event>> r =
      ParsePaperTrace("a;b\n1;2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace epl::kinect
