#include <gtest/gtest.h>

#include "core/gesture_definition.h"
#include "core/window.h"
#include "test_util.h"

namespace epl::core {
namespace {

using kinect::JointId;

JointWindow MakeWindow(Vec3 center, Vec3 half_width) {
  JointWindow window;
  window.center = center;
  window.half_width = half_width;
  return window;
}

TEST(JointWindowTest, ContainsInterior) {
  JointWindow w = MakeWindow(Vec3(100, 0, -100), Vec3(50, 50, 50));
  EXPECT_TRUE(w.Contains(Vec3(100, 0, -100)));
  EXPECT_TRUE(w.Contains(Vec3(149, 49, -51)));
  EXPECT_FALSE(w.Contains(Vec3(150, 0, -100)));  // boundary is exclusive
  EXPECT_FALSE(w.Contains(Vec3(100, 51, -100)));
  EXPECT_FALSE(w.Contains(Vec3(100, 0, -151)));
}

TEST(JointWindowTest, InactiveAxisUnconstrained) {
  JointWindow w = MakeWindow(Vec3(0, 0, 0), Vec3(10, 10, 10));
  w.active[2] = false;
  EXPECT_TRUE(w.Contains(Vec3(5, 5, 99999)));
  EXPECT_FALSE(w.Contains(Vec3(11, 5, 0)));
  EXPECT_EQ(w.NumActiveAxes(), 2);
}

TEST(JointWindowTest, Intersects) {
  JointWindow a = MakeWindow(Vec3(0, 0, 0), Vec3(50, 50, 50));
  JointWindow b = MakeWindow(Vec3(80, 0, 0), Vec3(40, 40, 40));
  EXPECT_TRUE(a.Intersects(b));
  JointWindow c = MakeWindow(Vec3(200, 0, 0), Vec3(40, 40, 40));
  EXPECT_FALSE(a.Intersects(c));
  // Touching boxes (gap == sum of half widths) do not intersect.
  JointWindow d = MakeWindow(Vec3(90, 0, 0), Vec3(40, 40, 40));
  EXPECT_FALSE(a.Intersects(d));
}

TEST(JointWindowTest, IntersectsIgnoresInactiveAxes) {
  JointWindow a = MakeWindow(Vec3(0, 0, 0), Vec3(10, 10, 10));
  JointWindow b = MakeWindow(Vec3(0, 0, 500), Vec3(10, 10, 10));
  EXPECT_FALSE(a.Intersects(b));
  a.active[2] = false;
  EXPECT_TRUE(a.Intersects(b));
}

TEST(JointWindowTest, ContainmentFraction) {
  JointWindow a = MakeWindow(Vec3(0, 0, 0), Vec3(50, 50, 50));
  // Identical box: fully contained.
  EXPECT_DOUBLE_EQ(a.ContainmentIn(a), 1.0);
  // Disjoint box: zero.
  JointWindow far = MakeWindow(Vec3(500, 0, 0), Vec3(50, 50, 50));
  EXPECT_DOUBLE_EQ(a.ContainmentIn(far), 0.0);
  // Half-overlapping on one axis.
  JointWindow half = MakeWindow(Vec3(50, 0, 0), Vec3(50, 50, 50));
  EXPECT_NEAR(a.ContainmentIn(half), 0.5, 1e-12);
}

TEST(JointWindowTest, WidenAppliesFactorMarginAndFloor) {
  JointWindow w = MakeWindow(Vec3(0, 0, 0), Vec3(10, 40, 0));
  w.Widen(2.0, 5.0, 30.0);
  EXPECT_DOUBLE_EQ(w.half_width.x, 30.0);  // 10*2+5=25 -> floor 30
  EXPECT_DOUBLE_EQ(w.half_width.y, 85.0);  // 40*2+5
  EXPECT_DOUBLE_EQ(w.half_width.z, 30.0);  // 0*2+5=5 -> floor 30
}

TEST(PoseWindowTest, ContainsRequiresAllJoints) {
  PoseWindow pose;
  pose.joints[JointId::kRightHand] =
      MakeWindow(Vec3(100, 100, -100), Vec3(50, 50, 50));
  pose.joints[JointId::kLeftHand] =
      MakeWindow(Vec3(-100, 100, -100), Vec3(50, 50, 50));
  std::map<JointId, Vec3> ok = {{JointId::kRightHand, Vec3(110, 90, -110)},
                                {JointId::kLeftHand, Vec3(-90, 110, -90)}};
  EXPECT_TRUE(pose.Contains(ok));
  std::map<JointId, Vec3> bad = {{JointId::kRightHand, Vec3(110, 90, -110)},
                                 {JointId::kLeftHand, Vec3(100, 110, -90)}};
  EXPECT_FALSE(pose.Contains(bad));
  // Missing joint: not contained.
  std::map<JointId, Vec3> partial = {
      {JointId::kRightHand, Vec3(110, 90, -110)}};
  EXPECT_FALSE(pose.Contains(partial));
}

TEST(PoseWindowTest, IntersectsPerJoint) {
  PoseWindow a;
  a.joints[JointId::kRightHand] = MakeWindow(Vec3(0, 0, 0), Vec3(50, 50, 50));
  PoseWindow b;
  b.joints[JointId::kRightHand] =
      MakeWindow(Vec3(60, 0, 0), Vec3(50, 50, 50));
  EXPECT_TRUE(a.Intersects(b));
  b.joints[JointId::kRightHand].center = Vec3(200, 0, 0);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(GestureDefinitionTest, ValidateAcceptsWellFormed) {
  GestureDefinition def;
  def.name = "g";
  def.joints = {JointId::kRightHand};
  PoseWindow p1;
  p1.joints[JointId::kRightHand] =
      MakeWindow(Vec3(0, 0, 0), Vec3(50, 50, 50));
  PoseWindow p2 = p1;
  p2.joints[JointId::kRightHand].center = Vec3(400, 0, 0);
  p2.max_gap = kSecond;
  def.poses = {p1, p2};
  EPL_EXPECT_OK(def.Validate());
  EXPECT_EQ(def.NumActiveConstraints(), 6);
}

TEST(GestureDefinitionTest, ValidateRejectsDefects) {
  GestureDefinition def;
  def.joints = {JointId::kRightHand};
  PoseWindow pose;
  pose.joints[JointId::kRightHand] =
      MakeWindow(Vec3(0, 0, 0), Vec3(50, 50, 50));
  def.poses = {pose};
  EXPECT_FALSE(def.Validate().ok());  // no name
  def.name = "g";
  EPL_EXPECT_OK(def.Validate());

  // Pose missing the involved joint.
  GestureDefinition missing = def;
  missing.poses[0].joints.clear();
  EXPECT_FALSE(missing.Validate().ok());

  // Zero width on an active axis.
  GestureDefinition zero_width = def;
  zero_width.poses[0].joints[JointId::kRightHand].half_width = Vec3(0, 5, 5);
  EXPECT_FALSE(zero_width.Validate().ok());
  // ... but fine when that axis is inactive.
  zero_width.poses[0].joints[JointId::kRightHand].active[0] = false;
  EPL_EXPECT_OK(zero_width.Validate());

  // Second pose without a time budget.
  GestureDefinition no_gap = def;
  no_gap.poses.push_back(def.poses[0]);
  EXPECT_FALSE(no_gap.Validate().ok());
}

}  // namespace
}  // namespace epl::core
