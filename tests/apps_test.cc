#include <gtest/gtest.h>

#include "apps/binding.h"
#include "apps/graph.h"
#include "apps/olap.h"
#include "test_util.h"

namespace epl::apps {
namespace {

TEST(OlapTest, DemoCubeHasFacts) {
  OlapCube cube = OlapCube::Demo();
  EXPECT_EQ(cube.num_facts(), 2 * 4 * 3 * 4 * 4);
  std::map<std::string, double> totals = cube.Aggregate();
  // Coarsest levels: year x country x category = 2*2*2 = 8 rows.
  EXPECT_EQ(totals.size(), 8u);
}

TEST(OlapTest, DrillDownRefinesGrouping) {
  OlapCube cube = OlapCube::Demo();
  size_t before = cube.Aggregate().size();
  EPL_ASSERT_OK(cube.DrillDown(Dimension::kTime));
  size_t after = cube.Aggregate().size();
  EXPECT_GT(after, before);
  EXPECT_EQ(cube.level(Dimension::kTime), 1);
}

TEST(OlapTest, DrillPastBottomFails) {
  OlapCube cube = OlapCube::Demo();
  EPL_ASSERT_OK(cube.DrillDown(Dimension::kRegion));
  EXPECT_EQ(cube.DrillDown(Dimension::kRegion).code(),
            StatusCode::kFailedPrecondition);
}

TEST(OlapTest, RollUpInvertsDrillDown) {
  OlapCube cube = OlapCube::Demo();
  double total_before = 0.0;
  for (const auto& [key, value] : cube.Aggregate()) {
    total_before += value;
  }
  EPL_ASSERT_OK(cube.DrillDown(Dimension::kProduct));
  EPL_ASSERT_OK(cube.RollUp(Dimension::kProduct));
  EXPECT_EQ(cube.level(Dimension::kProduct), 0);
  EXPECT_EQ(cube.RollUp(Dimension::kProduct).code(),
            StatusCode::kFailedPrecondition);
  // Aggregation totals are preserved by navigation.
  double total_after = 0.0;
  for (const auto& [key, value] : cube.Aggregate()) {
    total_after += value;
  }
  EXPECT_NEAR(total_before, total_after, 1e-6);
}

TEST(OlapTest, PivotRotatesDimensions) {
  OlapCube cube = OlapCube::Demo();
  EXPECT_EQ(cube.pivot_dimension(), Dimension::kTime);
  cube.Pivot();
  EXPECT_EQ(cube.pivot_dimension(), Dimension::kRegion);
  cube.Pivot();
  cube.Pivot();
  EXPECT_EQ(cube.pivot_dimension(), Dimension::kTime);
}

TEST(OlapTest, SliceFiltersAndCycles) {
  OlapCube cube = OlapCube::Demo();
  EPL_ASSERT_OK(cube.SliceNext());
  EXPECT_EQ(cube.slice_filter(), "2012");
  std::map<std::string, double> sliced = cube.Aggregate();
  for (const auto& [key, value] : sliced) {
    EXPECT_NE(key.find("2012"), std::string::npos);
  }
  EPL_ASSERT_OK(cube.SliceNext());
  EXPECT_EQ(cube.slice_filter(), "2013");
  EPL_ASSERT_OK(cube.SliceNext());  // wraps
  EXPECT_EQ(cube.slice_filter(), "2012");
  cube.Unslice();
  EXPECT_TRUE(cube.slice_filter().empty());
}

TEST(OlapTest, RenderShowsState) {
  OlapCube cube = OlapCube::Demo();
  std::string rendered = cube.Render();
  EXPECT_NE(rendered.find("cube[time@L0 x region@L0 x product@L0]"),
            std::string::npos);
  EXPECT_NE(rendered.find("2012"), std::string::npos);
}

TEST(GraphTest, BaconNumbers) {
  MovieGraph graph = MovieGraph::Demo();
  EPL_ASSERT_OK_AND_ASSIGN(int bacon, graph.BaconNumber("Kevin Bacon"));
  EXPECT_EQ(bacon, 0);
  EPL_ASSERT_OK_AND_ASSIGN(int hanks, graph.BaconNumber("Tom Hanks"));
  EXPECT_EQ(hanks, 1);  // Apollo 13
  EPL_ASSERT_OK_AND_ASSIGN(int wright, graph.BaconNumber("Robin Wright"));
  EXPECT_EQ(wright, 2);  // Forrest Gump -> Tom Hanks -> Apollo 13
  EPL_ASSERT_OK_AND_ASSIGN(int pitt, graph.BaconNumber("Brad Pitt"));
  EXPECT_EQ(pitt, 2);  // Interview -> Tom Cruise -> A Few Good Men
}

TEST(GraphTest, DisconnectedActorHasNoBaconNumber) {
  MovieGraph graph = MovieGraph::Demo();
  Result<int> r = graph.BaconNumber("Julianne Hough");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GraphTest, UnknownActorFails) {
  MovieGraph graph = MovieGraph::Demo();
  EXPECT_FALSE(graph.BaconNumber("Nobody").ok());
}

TEST(GraphTest, NeighborsSortedAndDeduplicated) {
  MovieGraph graph = MovieGraph::Demo();
  EPL_ASSERT_OK_AND_ASSIGN(int bacon, graph.FindNode("Kevin Bacon"));
  std::vector<int> neighbors = graph.Neighbors(bacon);
  ASSERT_EQ(neighbors.size(), 3u);  // three movies
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_LT(graph.node(neighbors[i - 1]).name,
              graph.node(neighbors[i]).name);
  }
}

TEST(GraphCursorTest, NavigationAndBack) {
  MovieGraph graph = MovieGraph::Demo();
  EPL_ASSERT_OK_AND_ASSIGN(int bacon, graph.FindNode("Kevin Bacon"));
  GraphCursor cursor(&graph, bacon);
  EXPECT_EQ(cursor.current_node().name, "Kevin Bacon");

  // Cycle selection and expand into a movie.
  int first_selected = cursor.selected_neighbor();
  cursor.NextNeighbor();
  EXPECT_NE(cursor.selected_neighbor(), first_selected);
  cursor.PrevNeighbor();
  EXPECT_EQ(cursor.selected_neighbor(), first_selected);

  EPL_ASSERT_OK(cursor.Expand());
  EXPECT_EQ(cursor.current_node().kind, MovieGraph::NodeKind::kMovie);
  EPL_ASSERT_OK(cursor.Expand());  // into some actor of that movie
  EXPECT_EQ(cursor.current_node().kind, MovieGraph::NodeKind::kActor);

  EPL_ASSERT_OK(cursor.Back());
  EPL_ASSERT_OK(cursor.Back());
  EXPECT_EQ(cursor.current_node().name, "Kevin Bacon");
  EXPECT_EQ(cursor.Back().code(), StatusCode::kFailedPrecondition);
}

TEST(GraphCursorTest, DescribeHighlightsSelection) {
  MovieGraph graph = MovieGraph::Demo();
  EPL_ASSERT_OK_AND_ASSIGN(int bacon, graph.FindNode("Kevin Bacon"));
  GraphCursor cursor(&graph, bacon);
  std::string description = cursor.Describe();
  EXPECT_NE(description.find("[actor] Kevin Bacon"), std::string::npos);
  EXPECT_NE(description.find("> "), std::string::npos);
}

cep::Detection Detect(const std::string& name) {
  cep::Detection detection;
  detection.name = name;
  return detection;
}

TEST(RouterTest, DispatchesToBoundCommand) {
  GestureCommandRouter router;
  int drills = 0;
  router.Bind("swipe_right", [&drills](const cep::Detection&) { ++drills; });
  router.OnDetection(Detect("swipe_right"));
  router.OnDetection(Detect("swipe_right"));
  EXPECT_EQ(drills, 2);
  EXPECT_EQ(router.dispatched(), 2u);
  EXPECT_EQ(router.unhandled(), 0u);
}

TEST(RouterTest, UnboundGestureCountsUnhandled) {
  GestureCommandRouter router;
  router.OnDetection(Detect("mystery"));
  EXPECT_EQ(router.unhandled(), 1u);
}

TEST(RouterTest, RebindReplacesCommand) {
  GestureCommandRouter router;
  std::string last;
  router.Bind("g", [&last](const cep::Detection&) { last = "first"; });
  router.OnDetection(Detect("g"));
  EXPECT_EQ(last, "first");
  // Runtime rebinding (the paper's demo finale).
  router.Bind("g", [&last](const cep::Detection&) { last = "second"; });
  router.OnDetection(Detect("g"));
  EXPECT_EQ(last, "second");
}

TEST(RouterTest, UnbindRemovesCommand) {
  GestureCommandRouter router;
  router.Bind("g", [](const cep::Detection&) {});
  EXPECT_TRUE(router.IsBound("g"));
  EPL_ASSERT_OK(router.Unbind("g"));
  EXPECT_FALSE(router.IsBound("g"));
  EXPECT_EQ(router.Unbind("g").code(), StatusCode::kNotFound);
}

TEST(RouterTest, DrivesOlapCube) {
  OlapCube cube = OlapCube::Demo();
  GestureCommandRouter router;
  router.Bind("swipe_right", [&cube](const cep::Detection&) {
    cube.DrillDown(Dimension::kTime).ok();
  });
  router.Bind("swipe_left", [&cube](const cep::Detection&) {
    cube.RollUp(Dimension::kTime).ok();
  });
  router.OnDetection(Detect("swipe_right"));
  EXPECT_EQ(cube.level(Dimension::kTime), 1);
  router.OnDetection(Detect("swipe_left"));
  EXPECT_EQ(cube.level(Dimension::kTime), 0);
}

}  // namespace
}  // namespace epl::apps
