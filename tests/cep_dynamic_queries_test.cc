// Properties of runtime query exchange (paper: "exchange gestures during
// runtime"), for the fused single-threaded operator and the sharded
// engine:
//
//  1. Replay equivalence: after an interleaved Add/Remove script, resetting
//     run state and replaying the stream yields bit-identical detections to
//     a fresh deploy of the final query set -- the exchange leaves no
//     residue in the bank, id routing, or callback dispatch.
//  2. Survivor independence: a query deployed from the start and never
//     removed produces bit-identical detections during the churn itself as
//     a standalone deployment -- neighbours being exchanged (and, for the
//     sharded engine, the query being rebalanced to another shard
//     mid-stream) never perturb its partial runs.
//  3. A query added mid-stream behaves exactly like a fresh deployment fed
//     the stream suffix.
//  4. Exchanges requested from inside a detection callback are deferred to
//     the end of the in-flight event (which still sees the old query set /
//     old predicate bank generation).

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cep/multi_match_operator.h"
#include "cep/sharded_engine.h"
#include "cep_workload_test_util.h"
#include "core/query_gen.h"
#include "kinect/sensor.h"
#include "query/compiler.h"
#include "stream/engine.h"
#include "test_util.h"

namespace epl::cep {
namespace {

using stream::Event;
using testing::CompileDefinitions;
using testing::DetectionRecord;
using testing::MakeSpec;
using testing::Recorder;
using testing::TrainedDefinitions;
using testing::Workload;

/// Churn script over 10 definitions: initial set {0..5}, two exchanges
/// mid-stream, final set {1,4,5,6,7,8,9} (by definition index).
struct ChurnStep {
  size_t event_index;
  std::vector<int> add;     // definition indices
  std::vector<int> remove;  // definition indices
};

const std::vector<ChurnStep>& Script() {
  static const std::vector<ChurnStep>* script = new std::vector<ChurnStep>{
      {40, {6, 7}, {2, 3}},
      {120, {8, 9}, {0}},
  };
  return *script;
}

std::vector<int> InitialSet() { return {0, 1, 2, 3, 4, 5}; }

std::vector<int> FinalSet() { return {1, 4, 5, 6, 7, 8, 9}; }

query::CompiledQuery Compile(const core::GestureDefinition& definition) {
  std::vector<query::CompiledQuery> one =
      CompileDefinitions({definition});
  return std::move(one[0]);
}

/// Detections of a fused deployment of `set` (definition indices, in
/// order) over `events` -- the ground truth for every comparison.
std::vector<DetectionRecord> FreshFused(
    const std::vector<core::GestureDefinition>& definitions,
    const std::vector<int>& set, const std::vector<Event>& events,
    MatcherOptions options) {
  MultiMatchOperator op(options);
  std::vector<DetectionRecord> records;
  for (int index : set) {
    op.AddQuery(MakeSpec(Compile(definitions[index]), Recorder(&records)));
  }
  for (const Event& event : events) {
    EPL_EXPECT_OK(op.Process(event));
  }
  return records;
}

class DynamicQueryModes : public ::testing::TestWithParam<int> {
 protected:
  MatcherOptions Options() const {
    MatcherOptions options;
    options.mode = GetParam() != 0 ? MatcherOptions::Mode::kExhaustive
                                   : MatcherOptions::Mode::kDominant;
    return options;
  }
};

TEST_P(DynamicQueryModes, FusedChurnThenReplayEqualsFreshDeploy) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(10);
  std::vector<Event> events = Workload(3);

  MultiMatchOperator op(Options());
  std::vector<DetectionRecord> churn_records;
  std::vector<int> live_ids(definitions.size(), -1);
  for (int index : InitialSet()) {
    live_ids[index] =
        op.AddQuery(MakeSpec(Compile(definitions[index]),
                             Recorder(&churn_records)));
  }
  size_t step = 0;
  uint64_t generation_before = op.matcher().bank_generation();
  for (size_t i = 0; i < events.size(); ++i) {
    if (step < Script().size() && Script()[step].event_index == i) {
      for (int index : Script()[step].add) {
        live_ids[index] =
            op.AddQuery(MakeSpec(Compile(definitions[index]),
                                 Recorder(&churn_records)));
      }
      for (int index : Script()[step].remove) {
        EPL_ASSERT_OK(op.RemoveQuery(live_ids[index]));
        live_ids[index] = -1;
      }
      ++step;
    }
    EPL_ASSERT_OK(op.Process(events[i]));
  }
  ASSERT_EQ(step, Script().size());
  // Each mutation batch costs exactly one lazy bank rebuild.
  EXPECT_EQ(op.matcher().bank_generation(),
            generation_before + Script().size());
  EXPECT_FALSE(churn_records.empty());

  // Replay from clean run state: the exchanged operator must be
  // indistinguishable from a fresh deploy of the final set.
  op.ResetMatchers();
  std::vector<DetectionRecord> replay_records;
  size_t churn_size = churn_records.size();
  for (const Event& event : events) {
    EPL_ASSERT_OK(op.Process(event));
  }
  replay_records.assign(churn_records.begin() +
                            static_cast<ptrdiff_t>(churn_size),
                        churn_records.end());

  std::vector<DetectionRecord> fresh =
      FreshFused(definitions, FinalSet(), events, Options());
  ASSERT_FALSE(fresh.empty());
  ASSERT_TRUE(replay_records == fresh)
      << replay_records.size() << " vs " << fresh.size() << " detections";
}

class ShardedDynamicQueries
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardedDynamicQueries, ChurnThenReplayEqualsFreshDeploy) {
  const int num_shards = std::get<0>(GetParam());
  MatcherOptions matcher_options;
  matcher_options.mode = std::get<1>(GetParam()) != 0
                             ? MatcherOptions::Mode::kExhaustive
                             : MatcherOptions::Mode::kDominant;
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(10);
  std::vector<Event> events = Workload(3);

  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.batch_size = 16;
  options.matcher = matcher_options;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> records;
  std::vector<int> live_ids(definitions.size(), -1);
  for (int index : InitialSet()) {
    live_ids[index] = sharded.AddQuery(
        MakeSpec(Compile(definitions[index]), Recorder(&records)));
  }
  EPL_ASSERT_OK(sharded.Start());
  size_t step = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (step < Script().size() && Script()[step].event_index == i) {
      for (int index : Script()[step].add) {
        live_ids[index] = sharded.AddQuery(
            MakeSpec(Compile(definitions[index]), Recorder(&records)));
      }
      for (int index : Script()[step].remove) {
        EPL_ASSERT_OK(sharded.RemoveQuery(live_ids[index]));
        live_ids[index] = -1;
      }
      ++step;
    }
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Flush());
  EXPECT_FALSE(records.empty());

  // Replay from clean run state against a fresh single-threaded fused
  // deploy of the final set: same detections, same total order.
  sharded.ResetMatchers();
  size_t churn_size = records.size();
  for (const Event& event : events) {
    ASSERT_TRUE(sharded.Push(event));
  }
  EPL_ASSERT_OK(sharded.Stop());
  std::vector<DetectionRecord> replay_records(
      records.begin() + static_cast<ptrdiff_t>(churn_size), records.end());

  std::vector<DetectionRecord> fresh =
      FreshFused(definitions, FinalSet(), events, matcher_options);
  ASSERT_FALSE(fresh.empty());
  ASSERT_TRUE(replay_records == fresh)
      << replay_records.size() << " vs " << fresh.size() << " detections at "
      << num_shards << " shards";
}

INSTANTIATE_TEST_SUITE_P(ShardsAndModes, ShardedDynamicQueries,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(0, 1)));

TEST_P(DynamicQueryModes, FusedSurvivorUnaffectedByChurn) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(10);
  std::vector<Event> events = Workload(3);

  MultiMatchOperator op(Options());
  std::vector<DetectionRecord> records;
  std::vector<int> live_ids(definitions.size(), -1);
  for (int index : InitialSet()) {
    live_ids[index] =
        op.AddQuery(MakeSpec(Compile(definitions[index]), Recorder(&records)));
  }
  size_t step = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (step < Script().size() && Script()[step].event_index == i) {
      for (int index : Script()[step].add) {
        live_ids[index] = op.AddQuery(
            MakeSpec(Compile(definitions[index]), Recorder(&records)));
      }
      for (int index : Script()[step].remove) {
        EPL_ASSERT_OK(op.RemoveQuery(live_ids[index]));
      }
      ++step;
    }
    EPL_ASSERT_OK(op.Process(events[i]));
  }

  // Queries 1, 4, 5 lived through the whole stream: their detections must
  // be exactly those of a standalone deployment, despite five neighbours
  // being exchanged around them (partial runs survive the bank swaps).
  for (int survivor : {1, 4, 5}) {
    std::vector<DetectionRecord> expected =
        FreshFused(definitions, {survivor}, events, Options());
    ASSERT_FALSE(expected.empty()) << "survivor " << survivor;
    std::vector<DetectionRecord> actual;
    for (const DetectionRecord& record : records) {
      if (record.name == definitions[static_cast<size_t>(survivor)].name) {
        actual.push_back(record);
      }
    }
    ASSERT_TRUE(actual == expected) << "survivor " << survivor;
  }
}

TEST(ShardedDynamicTest, SurvivorSurvivesRebalanceMidGesture) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(4);
  std::vector<Event> events = Workload(3);

  // Two shards: ids 0,2 land on shard 0; ids 1,3 on shard 1. Removing
  // both queries of shard 1 mid-stream forces the rebalancer to move a
  // survivor across shards while it may hold partial runs.
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.batch_size = 4;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> records;
  std::vector<int> ids;
  for (query::CompiledQuery& compiled : CompileDefinitions(definitions)) {
    ids.push_back(sharded.AddQuery(MakeSpec(std::move(compiled),
                                            Recorder(&records))));
  }
  ASSERT_EQ(sharded.shard_of(ids[1]), 1);
  EPL_ASSERT_OK(sharded.Start());
  const size_t churn_at = events.size() / 2;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == churn_at) {
      EPL_ASSERT_OK(sharded.RemoveQuery(ids[1]));
      EPL_ASSERT_OK(sharded.RemoveQuery(ids[3]));
    }
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  EPL_ASSERT_OK(sharded.Stop());
  EXPECT_GT(sharded.rebalanced_queries(), 0u);

  // Each survivor's detections equal a standalone deployment's.
  for (int survivor : {0, 2}) {
    std::vector<DetectionRecord> expected =
        FreshFused(definitions, {survivor}, events, MatcherOptions());
    ASSERT_FALSE(expected.empty()) << "survivor " << survivor;
    std::vector<DetectionRecord> actual;
    for (const DetectionRecord& record : records) {
      if (record.name == definitions[static_cast<size_t>(survivor)].name) {
        actual.push_back(record);
      }
    }
    ASSERT_TRUE(actual == expected) << "survivor " << survivor;
  }
}

TEST(ShardedDynamicTest, ChurnWithDynamicFleetSizeMatchesFreshDeploy) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(10);
  std::vector<Event> events = Workload(3);
  ASSERT_GT(events.size(), 250u);

  // The churn script runs against a fleet whose size changes under live
  // traffic: grow 2->4, shrink 4->1 (every query migrates off a doomed
  // shard, partial runs in hand), grow 1->3. Neither the exchanges nor
  // the migrations may perturb a surviving query's detections.
  ShardedEngineOptions options;
  options.num_shards = 2;
  options.batch_size = 8;
  options.work_stealing = true;
  ShardedEngine sharded(options);
  std::vector<DetectionRecord> records;
  std::vector<int> live_ids(definitions.size(), -1);
  for (int index : InitialSet()) {
    live_ids[index] = sharded.AddQuery(
        MakeSpec(Compile(definitions[index]), Recorder(&records)));
  }
  EPL_ASSERT_OK(sharded.Start());
  size_t step = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (step < Script().size() && Script()[step].event_index == i) {
      for (int index : Script()[step].add) {
        live_ids[index] = sharded.AddQuery(
            MakeSpec(Compile(definitions[index]), Recorder(&records)));
      }
      for (int index : Script()[step].remove) {
        EPL_ASSERT_OK(sharded.RemoveQuery(live_ids[index]));
        live_ids[index] = -1;
      }
      ++step;
    }
    if (i == 60) {
      EPL_ASSERT_OK(sharded.Resize(4));
    } else if (i == 140) {
      EPL_ASSERT_OK(sharded.Resize(1));
    } else if (i == 250) {
      EPL_ASSERT_OK(sharded.Resize(3));
    }
    ASSERT_TRUE(sharded.Push(events[i]));
  }
  ASSERT_EQ(step, Script().size());
  EXPECT_EQ(sharded.num_shards(), 3);
  EXPECT_EQ(sharded.resize_count(), 3u);
  EPL_ASSERT_OK(sharded.Flush());

  // Survivor independence across both churn and resizes: queries 1, 4, 5
  // lived through everything; their detections must match a standalone
  // deployment exactly (no partial run lost in any migration).
  for (int survivor : {1, 4, 5}) {
    std::vector<DetectionRecord> expected =
        FreshFused(definitions, {survivor}, events, MatcherOptions());
    ASSERT_FALSE(expected.empty()) << "survivor " << survivor;
    std::vector<DetectionRecord> actual;
    for (const DetectionRecord& record : records) {
      if (record.name == definitions[static_cast<size_t>(survivor)].name) {
        actual.push_back(record);
      }
    }
    ASSERT_TRUE(actual == expected) << "survivor " << survivor;
  }

  // Replay equivalence on the post-resize fleet: reset run state, replay
  // the stream, and the 3-shard fleet must be indistinguishable from a
  // fresh fused deploy of the final query set.
  sharded.ResetMatchers();
  const size_t churn_size = records.size();
  for (const Event& event : events) {
    ASSERT_TRUE(sharded.Push(event));
  }
  EPL_ASSERT_OK(sharded.Stop());
  std::vector<DetectionRecord> replay_records(
      records.begin() + static_cast<ptrdiff_t>(churn_size), records.end());
  std::vector<DetectionRecord> fresh =
      FreshFused(definitions, FinalSet(), events, MatcherOptions());
  ASSERT_FALSE(fresh.empty());
  ASSERT_TRUE(replay_records == fresh)
      << replay_records.size() << " vs " << fresh.size() << " detections";
}

TEST_P(DynamicQueryModes, AddedQueryEqualsFreshDeployOnSuffix) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(3);
  std::vector<Event> events = Workload(5);
  const size_t join_at = events.size() / 3;

  MultiMatchOperator op(Options());
  std::vector<DetectionRecord> records;
  op.AddQuery(MakeSpec(Compile(definitions[0]), Recorder(&records)));
  op.AddQuery(MakeSpec(Compile(definitions[1]), Recorder(&records)));
  std::vector<DetectionRecord> late_records;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i == join_at) {
      op.AddQuery(MakeSpec(Compile(definitions[2]), Recorder(&late_records)));
    }
    EPL_ASSERT_OK(op.Process(events[i]));
  }

  std::vector<Event> suffix(events.begin() + static_cast<ptrdiff_t>(join_at),
                            events.end());
  std::vector<DetectionRecord> expected =
      FreshFused(definitions, {2}, suffix, Options());
  ASSERT_FALSE(expected.empty());
  ASSERT_TRUE(late_records == expected)
      << late_records.size() << " vs " << expected.size();
}

INSTANTIATE_TEST_SUITE_P(Modes, DynamicQueryModes, ::testing::Values(0, 1));

TEST(DynamicQueryTest, MidCallbackExchangeIsDeferred) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(2);
  std::vector<Event> events = Workload(9);

  MultiMatchOperator op;
  int first_detections = 0;
  int second_detections = 0;
  int first_id = -1;
  bool exchanged = false;
  // On its first detection, the first gesture removes itself and installs
  // the second -- from inside the callback. The swap must not disturb the
  // event in flight.
  MultiMatchOperator::QuerySpec spec =
      MakeSpec(Compile(definitions[0]), nullptr);
  spec.callback = [&](const Detection&) {
    ++first_detections;
    if (!exchanged) {
      exchanged = true;
      size_t queries_before = op.num_queries();
      MultiMatchOperator::QuerySpec replacement =
          MakeSpec(Compile(definitions[1]), nullptr);
      replacement.callback = [&second_detections](const Detection&) {
        ++second_detections;
      };
      op.AddQuery(std::move(replacement));
      EPL_EXPECT_OK(op.RemoveQuery(first_id));
      // Deferred: the operator still reports the old query set.
      EXPECT_EQ(op.num_queries(), queries_before);
    }
  };
  first_id = op.AddQuery(std::move(spec));
  for (const Event& event : events) {
    EPL_ASSERT_OK(op.Process(event));
  }
  EXPECT_EQ(first_detections, 1);
  EXPECT_GT(second_detections, 0);
  EXPECT_EQ(op.num_queries(), 1u);
  EXPECT_EQ(op.RemoveQuery(first_id).code(), StatusCode::kNotFound);
}

TEST(DynamicQueryTest, AddFusedQueryJoinsLiveDeployment) {
  std::vector<core::GestureDefinition> definitions = TrainedDefinitions(3);
  std::vector<Event> events = Workload(17);

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  std::vector<DetectionRecord> records;
  EPL_ASSERT_OK_AND_ASSIGN(
      query::FusedDeployment deployment,
      core::DeployGesturesFused(&engine, {definitions[0]},
                                Recorder(&records)));
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    EPL_ASSERT_OK(engine.Push("kinect", events[i]));
  }
  EPL_ASSERT_OK_AND_ASSIGN(
      int added, core::AddFusedGesture(&engine, deployment, definitions[1],
                                       Recorder(&records)));
  EXPECT_EQ(deployment.op->num_queries(), 2u);
  for (size_t i = half; i < events.size(); ++i) {
    EPL_ASSERT_OK(engine.Push("kinect", events[i]));
  }
  EXPECT_FALSE(records.empty());
  EPL_ASSERT_OK(deployment.op->RemoveQuery(added));
  EXPECT_EQ(deployment.op->num_queries(), 1u);

  // A query reading another stream is rejected.
  core::GestureDefinition other = definitions[2];
  other.source_stream = "other";
  Result<int> bad = core::AddFusedGesture(&engine, deployment, other, nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace epl::cep
