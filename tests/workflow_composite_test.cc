// Composite gestures: detections re-entering the runtime as events.
//
// The pinned semantics (see cep/composite.h): a level-k detection at
// timestamp t is visible to level-k+1 patterns AT t (same feedback
// epoch, not t+1); the combined detection order of one source event is
// deterministic -- (event-seq, level, query-id) -- and bit-identical
// across the fused, batched, and sharded backends; the query DAG cannot
// contain cycles (a self-referencing deploy is an error, not UB).

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cep/composite.h"
#include "cep_workload_test_util.h"
#include "kinect/sensor.h"
#include "test_util.h"
#include "workflow/composite.h"
#include "workflow/gesture_runtime.h"

namespace epl::workflow {
namespace {

using cep::testing::DetectionRecord;
using cep::testing::Recorder;
using cep::testing::Train;
using cep::testing::Workload;
using kinect::GestureShapes;
using kinect::SkeletonFrame;
using kinect::UserProfile;

#define EPL_CHECK_OK_LOCAL(expr)                 \
  do {                                          \
    const Status _s = (expr);                   \
    EPL_CHECK(_s.ok()) << _s;                   \
  } while (false)

CompositeDefinition Consume(const std::string& name, int session,
                            const std::string& input, int count = 1,
                            double within_seconds = 0) {
  CompositeDefinition definition;
  definition.name = name;
  definition.steps.push_back(CompositeStep{session, input, count});
  definition.within_seconds = within_seconds;
  return definition;
}

// ---------------------------------------------------------------------------
// Definition plumbing.

TEST(CompositeDefinitionTest, SerializeParseRoundTrip) {
  CompositeDefinition definition;
  definition.name = "crowd erupts";
  definition.within_seconds = 2.5;
  definition.steps.push_back(CompositeStep{kAnySession, "swipe right", 50});
  definition.steps.push_back(CompositeStep{3, "raise_hand", 1});
  definition.steps.push_back(CompositeStep{kLocalSession, "push", 2});

  EPL_ASSERT_OK_AND_ASSIGN(
      CompositeDefinition parsed,
      ParseComposite(SerializeComposite(definition)));
  EXPECT_EQ(parsed.name, definition.name);
  EXPECT_EQ(parsed.within_seconds, definition.within_seconds);
  ASSERT_EQ(parsed.steps.size(), definition.steps.size());
  for (size_t i = 0; i < parsed.steps.size(); ++i) {
    EXPECT_EQ(parsed.steps[i].session, definition.steps[i].session);
    EXPECT_EQ(parsed.steps[i].gesture, definition.steps[i].gesture);
    EXPECT_EQ(parsed.steps[i].count, definition.steps[i].count);
  }
}

TEST(CompositeDefinitionTest, ValidationRejectsMalformedDefinitions) {
  CompositeDefinition unnamed;
  unnamed.steps.push_back(CompositeStep{kAnySession, "g", 1});
  EXPECT_EQ(ValidateComposite(unnamed).code(), StatusCode::kInvalidArgument);

  CompositeDefinition empty;
  empty.name = "c";
  EXPECT_EQ(ValidateComposite(empty).code(), StatusCode::kInvalidArgument);

  CompositeDefinition zero_count = Consume("c", kAnySession, "g", 0);
  EXPECT_EQ(ValidateComposite(zero_count).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(ParseComposite("not a composite").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Deploy-time DAG discipline.

TEST(CompositeDeployTest, SelfReferencingDeployIsAnError) {
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  GestureRuntime runtime(&engine);
  // The trivial cycle: a composite consuming its own detections. Rejected
  // as InvalidArgument at deploy -- never deployed, never UB.
  Status self_ref = runtime.DeployComposite(
      Consume("ouro", kLocalSession, "ouro"), nullptr);
  EXPECT_EQ(self_ref.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime.num_deployed(), 0u);
}

TEST(CompositeDeployTest, DeployRules) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);

  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  GestureRuntime runtime(&engine);

  // Inputs must be live at deploy time.
  EXPECT_EQ(runtime
                .DeployComposite(Consume("combo", kLocalSession, "swipe_right"),
                                 nullptr)
                .code(),
            StatusCode::kNotFound);

  EPL_ASSERT_OK(runtime.Deploy(swipe, nullptr));
  EPL_ASSERT_OK(runtime.DeployComposite(
      Consume("combo", kLocalSession, "swipe_right"), nullptr));
  EXPECT_TRUE(runtime.IsDeployed("combo"));

  // A consumed input cannot be undeployed from under its consumer...
  EXPECT_EQ(runtime.Undeploy("swipe_right").code(),
            StatusCode::kFailedPrecondition);
  // ...and a composite cannot be deployed under a name a live composite
  // consumes (the one edge shape that could point backwards in the DAG).
  EXPECT_EQ(runtime
                .DeployComposite(Consume("swipe_right", kLocalSession, "combo"),
                                 nullptr)
                .code(),
            StatusCode::kFailedPrecondition);

  // Consumer first, then the input: both retire cleanly.
  EPL_ASSERT_OK(runtime.Undeploy("combo"));
  EPL_ASSERT_OK(runtime.Undeploy("swipe_right"));
  EXPECT_EQ(runtime.num_deployed(), 0u);
}

TEST(CompositeDeployTest, LegacyBackendRejectsComposites) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  stream::StreamEngine engine;
  EPL_ASSERT_OK(kinect::RegisterKinectStream(&engine));
  GestureRuntimeOptions options;
  options.backend = RuntimeBackend::kLegacyPerQuery;
  GestureRuntime runtime(&engine, options);
  EPL_ASSERT_OK(runtime.Deploy(swipe, nullptr));
  EXPECT_EQ(runtime
                .DeployComposite(Consume("combo", kLocalSession, "swipe_right"),
                                 nullptr)
                .code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Feedback semantics: same-epoch visibility, deterministic order,
// backend bit-equality.

/// Runs a three-level ladder (base swipe_right -> combo -> meta) over the
/// synthetic workload, recording EVERY detection through one shared
/// recorder (so the record order IS the delivery order).
std::vector<DetectionRecord> RunLadder(const GestureRuntimeOptions& options) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  stream::StreamEngine engine;
  EPL_CHECK_OK_LOCAL(kinect::RegisterKinectStream(&engine));
  GestureRuntime runtime(&engine, options);
  std::vector<DetectionRecord> records;
  EPL_CHECK_OK_LOCAL(runtime.Deploy(swipe, Recorder(&records)));
  EPL_CHECK_OK_LOCAL(runtime.DeployComposite(
      Consume("combo", kLocalSession, "swipe_right"), Recorder(&records)));
  EPL_CHECK_OK_LOCAL(runtime.DeployComposite(
      Consume("meta", kLocalSession, "combo"), Recorder(&records)));
  for (const stream::Event& event : Workload(77)) {
    EPL_CHECK_OK_LOCAL(engine.Push("kinect", event));
  }
  EPL_CHECK_OK_LOCAL(runtime.Flush());
  return records;
}

TEST(CompositeFeedbackTest, SameEpochVisibilityAndDeterministicOrder) {
  GestureRuntimeOptions fused;
  const std::vector<DetectionRecord> records = RunLadder(fused);

  // The ladder fired end to end: every base detection produced a combo
  // detection AND a meta detection -- at the SAME timestamp (a level-k
  // detection at t is visible to level k+1 at t, not t+1).
  std::map<std::string, std::vector<TimePoint>> times;
  for (const DetectionRecord& record : records) {
    times[record.name].push_back(record.time);
  }
  ASSERT_FALSE(times["swipe_right"].empty());
  EXPECT_EQ(times["combo"], times["swipe_right"]);
  EXPECT_EQ(times["meta"], times["swipe_right"]);

  // Delivery order within one epoch is by level: base, then combo, then
  // meta, for every detection triple.
  const std::map<std::string, int> rank = {
      {"swipe_right", 0}, {"combo", 1}, {"meta", 2}};
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    if (records[i].time == records[i + 1].time) {
      EXPECT_LT(rank.at(records[i].name), rank.at(records[i + 1].name))
          << "epoch order violated at record " << i;
    }
  }
}

TEST(CompositeFeedbackTest, LadderBitIdenticalAcrossBackends) {
  GestureRuntimeOptions fused;
  const std::vector<DetectionRecord> baseline = RunLadder(fused);
  ASSERT_FALSE(baseline.empty());

  GestureRuntimeOptions batched;
  batched.batch_size = 4;
  EXPECT_EQ(RunLadder(batched), baseline) << "batched diverged";

  GestureRuntimeOptions sharded1;
  sharded1.backend = RuntimeBackend::kSharded;
  sharded1.num_shards = 1;
  EXPECT_EQ(RunLadder(sharded1), baseline) << "sharded(1) diverged";

  GestureRuntimeOptions sharded4;
  sharded4.backend = RuntimeBackend::kSharded;
  sharded4.num_shards = 4;
  EXPECT_EQ(RunLadder(sharded4), baseline) << "sharded(4) diverged";
}

// ---------------------------------------------------------------------------
// Cross-session aggregates: "N users swiped right within the window".

std::vector<DetectionRecord> RunCrossSession(
    const GestureRuntimeOptions& options) {
  const core::GestureDefinition swipe = Train(GestureShapes::SwipeRight(), 10);
  UserProfile user;
  kinect::SessionBuilder alice_builder(user, 501);
  alice_builder.Idle(0.4).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.5);
  kinect::SessionBuilder bob_builder(user, 502);
  bob_builder.Idle(0.6).Perform(GestureShapes::SwipeRight(), 0.3).Idle(0.4);

  stream::StreamEngine engine;
  GestureRuntime runtime(&engine, options);
  std::vector<DetectionRecord> records;
  SessionId alice = runtime.OpenSession("alice").value();
  SessionId bob = runtime.OpenSession("bob").value();
  EPL_CHECK_OK_LOCAL(runtime.Deploy(alice, swipe, nullptr));
  EPL_CHECK_OK_LOCAL(runtime.Deploy(bob, swipe, nullptr));
  // Runtime-global aggregate owned by the local pseudo-session: any two
  // swipe_right detections, from ANY sessions, within 30 s.
  EPL_CHECK_OK_LOCAL(runtime.DeployComposite(
      Consume("double_swipe", kAnySession, "swipe_right", 2, 30.0),
      Recorder(&records)));

  std::vector<std::pair<SessionId, SkeletonFrame>> merged;
  for (const SkeletonFrame& frame : alice_builder.frames()) {
    merged.emplace_back(alice, frame);
  }
  for (const SkeletonFrame& frame : bob_builder.frames()) {
    merged.emplace_back(bob, frame);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.timestamp < b.second.timestamp;
                   });
  for (const auto& [session, frame] : merged) {
    EPL_CHECK_OK_LOCAL(runtime.PushFrame(session, frame));
  }
  EPL_CHECK_OK_LOCAL(runtime.Flush());
  return records;
}

TEST(CompositeFeedbackTest, CrossSessionAggregateFires) {
  GestureRuntimeOptions fused;
  const std::vector<DetectionRecord> baseline = RunCrossSession(fused);
  // Alice's swipe plus bob's swipe complete the 2-count aggregate.
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline[0].name, "double_swipe");

  GestureRuntimeOptions sharded4;
  sharded4.backend = RuntimeBackend::kSharded;
  sharded4.num_shards = 4;
  EXPECT_EQ(RunCrossSession(sharded4), baseline)
      << "cross-session aggregate diverged on sharded(4)";
}

}  // namespace
}  // namespace epl::workflow
