// Interactive learning session (paper Sec. 3.1 / Fig. 2): the complete
// workflow driven purely by gestures — wave to record, perform the
// gesture between two still poses, repeat, finish with a two-hand swipe,
// then test the freshly learned gesture. The GUI of the paper maps to
// status lines on stdout; the gesture database persists to ./gesture_db.

#include <cstdio>

#include "gesturedb/store.h"
#include "kinect/sensor.h"
#include "workflow/controller.h"

using namespace epl;

int main() {
  Result<gesturedb::GestureStore> store =
      gesturedb::GestureStore::Open("gesture_db");
  EPL_CHECK(store.ok()) << store.status();

  stream::StreamEngine engine;
  workflow::ControllerEvents events;
  events.on_status = [](const std::string& status) {
    std::printf("[status ] %s\n", status.c_str());
  };
  events.on_warning = [](const std::string& warning) {
    std::printf("[warning] %s\n", warning.c_str());
  };
  events.on_sample = [](int index, int poses) {
    std::printf("[sample ] #%d merged (%d characteristic poses)\n", index,
                poses);
  };
  events.on_deployed = [](const std::string& name,
                          const std::string& query) {
    std::printf("[deploy ] gesture '%s' is live; generated query:\n%s\n",
                name.c_str(), query.c_str());
  };
  events.on_detection = [](const cep::Detection& detection) {
    std::printf("[detect ] \"%s\" fired after %s\n",
                detection.name.c_str(),
                FormatDuration(detection.duration()).c_str());
  };

  workflow::LearningController controller(&engine, &(*store),
                                          workflow::ControllerConfig(),
                                          events);
  EPL_CHECK(controller.Init().ok());
  EPL_CHECK(controller
                .BeginGesture("circle", {kinect::JointId::kRightHand})
                .ok());

  // The simulated user performs the whole session in front of the camera.
  // Note the deviating third recording: the user absent-mindedly raises
  // the hand instead of drawing a circle — the incremental merger warns.
  kinect::UserProfile user;
  kinect::SessionBuilder session(user, 31415);
  session.Idle(0.6);
  for (int round = 0; round < 4; ++round) {
    session.Perform(kinect::GestureShapes::Wave());  // control: record
    const kinect::GestureShape shape =
        round == 2 ? kinect::GestureShapes::RaiseHand()
                   : kinect::GestureShapes::Circle();
    session.Perform(shape, /*dwell_s=*/0.9);
    session.Idle(0.4);
  }
  session.Perform(kinect::GestureShapes::TwoHandSwipe());  // control: done
  session.Idle(0.8);
  // Testing phase: one clean circle, and one swipe that must NOT fire.
  session.Perform(kinect::GestureShapes::Circle(), 0.4);
  session.Idle(0.5);
  session.Perform(kinect::GestureShapes::SwipeRight(), 0.4);
  session.Idle(0.5);

  EPL_CHECK(controller.PushFrames(session.frames()).ok());

  std::printf("\nsession finished in phase '%s' with %d samples\n",
              std::string(
                  workflow::ControllerPhaseToString(controller.phase()))
                  .c_str(),
              controller.sample_count());
  Result<std::vector<std::string>> stored = store->List();
  if (stored.ok()) {
    std::printf("gesture database now contains:");
    for (const std::string& name : *stored) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  return controller.phase() == workflow::ControllerPhase::kTesting ? 0 : 1;
}
