// Interactive learning session (paper Sec. 3.1 / Fig. 2): the complete
// workflow driven purely by gestures — wave to record, perform the
// gesture between two still poses, repeat, finish with a two-hand swipe,
// then test the freshly learned gesture. The GUI of the paper maps to
// status lines on stdout; the gesture database persists to ./gesture_db.
//
// Everything runs on ONE shared GestureRuntime: alice's control gestures
// and her learned gesture multiplex over a single fused operator; after a
// sloppy first learning pass (a deviating sample — the merger warns) she
// RE-LEARNS the gesture, which hot-swaps the live query atomically at an
// event boundary; and a second user (bob) then joins the SAME runtime
// under his own session — the gesture alice stored comes back live for
// him at Init, detected through the shared bank with per-session routing.
//
// The runtime is DURABLE: every session open, deploy, and frame is
// written ahead to a WAL, so after the first server checkpoints and
// "crashes" (its whole stack is torn down), a fresh server Recover()s
// from the durability directory and carries on detecting for bob.

#include <cstdio>
#include <cstdlib>

#include "gesturedb/store.h"
#include "kinect/sensor.h"
#include "workflow/controller.h"
#include "workflow/gesture_runtime.h"

using namespace epl;

namespace {

/// What the recovery epilogue needs from the first server lifetime.
struct ServeOutcome {
  int alice_detections = 0;
  int bob_detections = 0;
  workflow::SessionId bob_session = workflow::kLocalSession;
  bool alice_reached_testing = false;
};

/// The first server lifetime: alice learns and re-learns 'circle', bob
/// joins and detects it, then the runtime checkpoints. Returning tears
/// the whole stack down — engine, runtime, controllers — as abruptly as
/// a crash would; only the durability directory survives.
ServeOutcome ServeAndCheckpoint(gesturedb::GestureStore* store,
                                const workflow::GestureRuntimeOptions& options) {
  ServeOutcome outcome;
  stream::StreamEngine engine;
  // One shared runtime for every user of this "server".
  workflow::GestureRuntime runtime(&engine, options);

  workflow::ControllerEvents events;
  events.on_status = [](const std::string& status) {
    std::printf("[status ] %s\n", status.c_str());
  };
  events.on_warning = [](const std::string& warning) {
    std::printf("[warning] %s\n", warning.c_str());
  };
  events.on_sample = [](int index, int poses) {
    std::printf("[sample ] #%d merged (%d characteristic poses)\n", index,
                poses);
  };
  events.on_deployed = [](const std::string& name,
                          const std::string& query) {
    std::printf("[deploy ] gesture '%s' is live; generated query:\n%s\n",
                name.c_str(), query.c_str());
  };
  events.on_detection = [&outcome](const cep::Detection& detection) {
    ++outcome.alice_detections;
    std::printf("[detect ] \"%s\" fired after %s\n",
                detection.name.c_str(),
                FormatDuration(detection.duration()).c_str());
  };

  workflow::LearningController controller(&runtime, "alice", store,
                                          workflow::ControllerConfig(),
                                          events);
  EPL_CHECK(controller.Init().ok());
  EPL_CHECK(controller
                .BeginGesture("circle", {kinect::JointId::kRightHand})
                .ok());

  // The simulated user performs the whole session in front of the camera.
  // Note the deviating third recording: the user absent-mindedly raises
  // the hand instead of drawing a circle — the incremental merger warns,
  // and the sloppily merged gesture won't detect reliably.
  kinect::UserProfile user;
  kinect::SessionBuilder session(user, 31415);
  session.Idle(0.6);
  for (int round = 0; round < 4; ++round) {
    session.Perform(kinect::GestureShapes::Wave());  // control: record
    const kinect::GestureShape shape =
        round == 2 ? kinect::GestureShapes::RaiseHand()
                   : kinect::GestureShapes::Circle();
    session.Perform(shape, /*dwell_s=*/0.9);
    session.Idle(0.4);
  }
  session.Perform(kinect::GestureShapes::TwoHandSwipe());  // control: done
  session.Idle(0.8);
  EPL_CHECK(controller.PushFrames(session.frames()).ok());

  // Take two: alice re-learns the gesture with clean samples. The live
  // "circle" query hot-swaps inside the shared runtime at an exact event
  // boundary — no undeploy/redeploy window, no other query perturbed.
  std::printf("\n[re-learn] redefining 'circle' with clean samples\n");
  EPL_CHECK(controller
                .BeginGesture("circle", {kinect::JointId::kRightHand})
                .ok());
  kinect::SessionBuilder retake(user, 16180);
  retake.Idle(0.5);
  for (int round = 0; round < 3; ++round) {
    retake.Perform(kinect::GestureShapes::Wave());
    retake.Perform(kinect::GestureShapes::Circle(), /*dwell_s=*/0.9);
    retake.Idle(0.4);
  }
  retake.Perform(kinect::GestureShapes::TwoHandSwipe());
  retake.Idle(0.8);
  // Testing phase: one clean circle, and one swipe that must NOT fire.
  retake.Perform(kinect::GestureShapes::Circle(), 0.4);
  retake.Idle(0.5);
  retake.Perform(kinect::GestureShapes::SwipeRight(), 0.4);
  retake.Idle(0.5);
  EPL_CHECK(controller.PushFrames(retake.frames()).ok());

  std::printf("\nalice finished in phase '%s' with %d samples\n",
              std::string(
                  workflow::ControllerPhaseToString(controller.phase()))
                  .c_str(),
              controller.sample_count());
  Result<std::vector<std::string>> stored = store->List();
  if (stored.ok()) {
    std::printf("gesture database now contains:");
    for (const std::string& name : *stored) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }

  // A second user joins the SAME runtime: the stored gesture deploys into
  // the shared bank at Init (boot-time bulk load) and fires for bob alone.
  workflow::ControllerEvents bob_events;
  bob_events.on_detection = [&outcome](const cep::Detection& d) {
    ++outcome.bob_detections;
    std::printf("[bob    ] \"%s\" detected on the shared runtime\n",
                d.name.c_str());
  };
  workflow::LearningController bob(&runtime, "bob", store,
                                   workflow::ControllerConfig(), bob_events);
  EPL_CHECK(bob.Init().ok());
  kinect::UserProfile bob_profile;
  bob_profile.height_mm = 1600;
  kinect::SessionBuilder bob_session(bob_profile, 27182);
  bob_session.Idle(0.5);
  bob_session.Perform(kinect::GestureShapes::Circle(), 0.4);
  bob_session.Idle(0.5);
  EPL_CHECK(bob.PushFrames(bob_session.frames()).ok());

  std::printf(
      "\nshared runtime: %zu gesture queries over %zu fused channel(s); "
      "bob saw %d detection(s)\n",
      runtime.num_deployed(), runtime.num_channels(),
      outcome.bob_detections);

  outcome.bob_session = bob.session();
  outcome.alice_reached_testing =
      controller.phase() == workflow::ControllerPhase::kTesting;

  // Checkpoint: quiesce, snapshot the full run state (sessions, deployed
  // queries, the matchers' partial matches), prune the covered WAL
  // prefix.
  EPL_CHECK(runtime.Checkpoint().ok());
  return outcome;
}

}  // namespace

int main() {
  Result<gesturedb::GestureStore> store =
      gesturedb::GestureStore::Open("gesture_db");
  EPL_CHECK(store.ok()) << store.status();

  // Durability lives in its own directory next to the gesture database:
  // the event WAL plus run-state checkpoints. A fresh directory per run
  // keeps the walkthrough deterministic.
  std::string wal_dir = "gesture_wal_XXXXXX";
  EPL_CHECK(::mkdtemp(wal_dir.data()) != nullptr);
  workflow::GestureRuntimeOptions runtime_options;
  runtime_options.durability.dir = wal_dir;

  const ServeOutcome outcome = ServeAndCheckpoint(&(*store), runtime_options);

  // ---- Recovery: a new server restarts from the durability dir. -----
  // Recover() restores the checkpoint and replays the WAL suffix. The
  // factory re-attaches one detection callback per recovered query —
  // callbacks are code, the one thing a snapshot cannot carry.
  std::printf("\n[recover] restarting the server from %s\n",
              wal_dir.c_str());
  int recovered_detections = 0;
  stream::StreamEngine engine;
  workflow::RecoverStats stats;
  Result<std::unique_ptr<workflow::GestureRuntime>> recovered =
      workflow::GestureRuntime::Recover(
          &engine, runtime_options,
          [&recovered_detections](workflow::SessionId,
                                  const std::string& name) {
            return [&recovered_detections,
                    name](const cep::Detection& detection) {
              ++recovered_detections;
              std::printf("[recover] \"%s\" fired after %s on the "
                          "recovered runtime\n",
                          name.c_str(),
                          FormatDuration(detection.duration()).c_str());
            };
          },
          &stats);
  EPL_CHECK(recovered.ok()) << recovered.status();
  std::printf(
      "[recover] %zu queries live again; snapshot covered seq %llu, "
      "%llu WAL records replayed; bob had ingested %llu frames\n",
      (*recovered)->num_deployed(),
      static_cast<unsigned long long>(stats.snapshot_seq),
      static_cast<unsigned long long>(stats.replayed_records),
      static_cast<unsigned long long>(
          (*recovered)->ingested_events(outcome.bob_session)));

  // Bob keeps performing against the recovered server: his session, his
  // deployed 'circle', and the matcher's run state all survived.
  kinect::UserProfile returning_bob;
  returning_bob.height_mm = 1600;
  kinect::SessionBuilder encore(returning_bob, 14142);
  encore.Idle(0.5);
  encore.Perform(kinect::GestureShapes::Circle(), 0.4);
  encore.Idle(0.5);
  EPL_CHECK(
      (*recovered)->PushFrames(outcome.bob_session, encore.frames()).ok());
  EPL_CHECK((*recovered)->Flush().ok());

  return outcome.alice_reached_testing && outcome.alice_detections > 0 &&
                 outcome.bob_detections > 0 && recovered_detections > 0
             ? 0
             : 1;
}
