// Graph navigation demo (paper Sec. 4, ref [1]: "Gesture-Based Navigation
// in Graph Databases — The Kevin Bacon Game"): gestures walk an
// actor-movie graph starting at Kevin Bacon.

#include <cstdio>

#include "apps/binding.h"
#include "apps/graph.h"
#include "core/learner.h"
#include "kinect/sensor.h"
#include "transform/transform.h"
#include "transform/view.h"

using namespace epl;

namespace {

core::GestureDefinition Train(const kinect::GestureShape& shape,
                              uint64_t seed) {
  core::GestureLearner learner(shape.name, shape.InvolvedJoints());
  for (int i = 0; i < 3; ++i) {
    std::vector<kinect::SkeletonFrame> sample =
        kinect::SynthesizeSample(kinect::UserProfile(), shape, seed + i);
    for (kinect::SkeletonFrame& frame : sample) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    EPL_CHECK(learner.AddSample(sample).ok());
  }
  Result<core::GestureDefinition> definition = learner.Learn();
  EPL_CHECK(definition.ok());
  return std::move(definition).value();
}

}  // namespace

int main() {
  apps::MovieGraph graph = apps::MovieGraph::Demo();
  Result<int> start = graph.FindNode("Kevin Bacon");
  EPL_CHECK(start.ok());
  apps::GraphCursor cursor(&graph, *start);

  apps::GestureCommandRouter router;
  auto show = [&cursor, &graph]() {
    std::printf("%s", cursor.Describe().c_str());
    if (cursor.current_node().kind == apps::MovieGraph::NodeKind::kActor) {
      Result<int> bacon = graph.BaconNumber(cursor.current_node().name);
      if (bacon.ok()) {
        std::printf("  (Bacon number %d)\n", *bacon);
      }
    }
  };
  router.Bind("swipe_right", [&](const cep::Detection&) {
    cursor.NextNeighbor();
    std::printf("\n[gesture] next neighbor\n");
    show();
  });
  router.Bind("swipe_left", [&](const cep::Detection&) {
    cursor.PrevNeighbor();
    std::printf("\n[gesture] previous neighbor\n");
    show();
  });
  router.Bind("push_forward", [&](const cep::Detection&) {
    Status status = cursor.Expand();
    std::printf("\n[gesture] expand -> %s\n",
                status.ok() ? "ok" : status.ToString().c_str());
    show();
  });
  router.Bind("raise_hand", [&](const cep::Detection&) {
    Status status = cursor.Back();
    std::printf("\n[gesture] back -> %s\n",
                status.ok() ? "ok" : status.ToString().c_str());
    show();
  });

  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
  std::vector<kinect::GestureShape> shapes = {
      kinect::GestureShapes::SwipeRight(), kinect::GestureShapes::SwipeLeft(),
      kinect::GestureShapes::PushForward(),
      kinect::GestureShapes::RaiseHand()};
  for (size_t i = 0; i < shapes.size(); ++i) {
    EPL_CHECK(core::DeployGesture(&engine, Train(shapes[i], 700 + 10 * i),
                                  router.AsCallback())
                  .ok());
  }

  std::printf("start node:\n");
  std::printf("%s", cursor.Describe().c_str());

  // Play the Kevin Bacon game: into a movie, across to a co-star, back.
  kinect::UserProfile player;
  kinect::SessionBuilder session(player, 4711);
  session.Idle(0.5)
      .Perform(kinect::GestureShapes::SwipeRight(), 0.3)    // select
      .Idle(0.4)
      .Perform(kinect::GestureShapes::PushForward(), 0.3)   // into movie
      .Idle(0.4)
      .Perform(kinect::GestureShapes::SwipeRight(), 0.3)    // pick co-star
      .Idle(0.4)
      .Perform(kinect::GestureShapes::PushForward(), 0.3)   // to the actor
      .Idle(0.4)
      .Perform(kinect::GestureShapes::RaiseHand(), 0.3)     // back
      .Idle(0.5);
  EPL_CHECK(kinect::PlayFrames(&engine, session.frames()).ok());

  std::printf("\nrouter: %llu commands dispatched\n",
              static_cast<unsigned long long>(router.dispatched()));
  return router.dispatched() >= 5 ? 0 : 1;
}
