// Query inspector: developer tooling around the declarative layer.
// Parses a gesture query (default: the paper's Fig. 1 query), prints the
// normalized text, the compiled NFA, and optionally replays a CSV trace
// against it.
//
//   $ ./query_inspector                     # inspect the built-in query
//   $ ./query_inspector my_query.eql        # inspect a query file
//   $ ./query_inspector my_query.eql trace.csv   # ... and replay a trace

#include <cstdio>

#include "common/csv.h"
#include "kinect/trace_io.h"
#include "query/compiler.h"
#include "query/parser.h"
#include "query/unparser.h"

using namespace epl;

namespace {

constexpr char kDefaultQuery[] = R"(SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rHand_x - torso_x - 0) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rHand_x - torso_x - 400) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rHand_x - torso_x - 800) < 50 and
  abs(rHand_y - torso_y - 150) < 50 and
  abs(rHand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
)";

}  // namespace

int main(int argc, char** argv) {
  std::string query_text = kDefaultQuery;
  if (argc > 1) {
    Result<std::string> file = ReadFileToString(argv[1]);
    if (!file.ok()) {
      std::printf("cannot read %s: %s\n", argv[1],
                  file.status().ToString().c_str());
      return 1;
    }
    query_text = *file;
  }

  Result<query::ParsedQuery> parsed = query::ParseQuery(query_text);
  if (!parsed.ok()) {
    std::printf("parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("=== normalized query ===\n%s\n",
              query::FormatQuery(*parsed).c_str());
  std::printf("=== compact form ===\n%s\n\n",
              query::FormatQueryCompact(*parsed).c_str());

  // Compile against the schema the query's source stream would have. The
  // paper's query reads the raw 6-column trace schema; full queries read
  // kinect/kinect_t.
  std::vector<std::string> fields;
  for (const cep::ExprPtr& measure : parsed->measures) {
    for (const std::string& field : measure->ReferencedFields()) {
      fields.push_back(field);
    }
  }
  for (const cep::PatternExpr* pose : parsed->pattern->Poses()) {
    for (const std::string& field : pose->predicate().ReferencedFields()) {
      fields.push_back(field);
    }
  }
  std::sort(fields.begin(), fields.end());
  fields.erase(std::unique(fields.begin(), fields.end()), fields.end());
  stream::Schema schema(fields);

  Result<query::CompiledQuery> compiled =
      query::CompileQuery(*parsed, schema);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n",
                compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("=== compiled pattern ===\nsource stream: %s\n%s\n",
              compiled->source_stream.c_str(),
              compiled->pattern.ToString().c_str());

  if (argc > 2) {
    Result<CsvTable> table = ReadCsvFile(argv[2]);
    if (!table.ok()) {
      std::printf("cannot read trace: %s\n",
                  table.status().ToString().c_str());
      return 1;
    }
    // Map trace columns onto the schema fields (torsoX-style headers are
    // normalized to torso_x).
    std::printf("=== replaying %s (%zu rows) ===\n", argv[2],
                table->rows.size());
    stream::StreamEngine engine;
    EPL_CHECK(engine.RegisterStream(compiled->source_stream, schema).ok());
    int detections = 0;
    Result<stream::DeploymentId> id = query::DeployQuery(
        &engine, *parsed, [&detections](const cep::Detection& d) {
          ++detections;
          std::printf("detection at %s\n",
                      FormatDuration(d.time).c_str());
        });
    if (!id.ok()) {
      std::printf("deploy failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    TimePoint t = 0;
    for (const std::vector<double>& row : table->rows) {
      stream::Event event;
      event.timestamp = t;
      t += kinect::kFramePeriod;
      event.values.resize(fields.size());
      // Column resolution: exact header match, else paper-style header.
      for (size_t f = 0; f < fields.size(); ++f) {
        for (size_t c = 0; c < table->header.size(); ++c) {
          std::string normalized = table->header[c];
          if (normalized == "torsoX") normalized = "torso_x";
          if (normalized == "torsoY") normalized = "torso_y";
          if (normalized == "torsoZ") normalized = "torso_z";
          if (normalized == "rHandX") normalized = "rHand_x";
          if (normalized == "rHandY") normalized = "rHand_y";
          if (normalized == "rHandZ") normalized = "rHand_z";
          if (normalized == fields[f]) {
            event.values[f] = row[c];
          }
        }
      }
      EPL_CHECK(engine.Push(compiled->source_stream, event).ok());
    }
    std::printf("%d detection(s)\n", detections);
  } else {
    std::printf("(pass a query file and a CSV trace to replay it, e.g.\n"
                " ./query_inspector q.eql %s/fig1_swipe_right.csv)\n",
                EPL_DATA_DIR);
  }
  return 0;
}
