// Quickstart: learn a gesture from a few samples, print the generated CEP
// query, deploy it, and detect the gesture performed by a different user.
//
//   $ ./quickstart
//
// This walks the full pipeline of the paper in ~60 lines of user code:
// synthesize -> transform (kinect_t) -> distance-based sampling -> window
// merging -> query generation -> deployment -> detection.

#include <cstdio>

#include "core/learner.h"
#include "kinect/sensor.h"
#include "kinect/synthesizer.h"
#include "transform/transform.h"
#include "transform/view.h"
#include "workflow/gesture_runtime.h"

using namespace epl;  // examples favor brevity

int main() {
  // 1. Record three samples of a swipe_right (here: synthesized; with a
  //    real camera these come from the recorder in workflow/).
  kinect::GestureShape shape = kinect::GestureShapes::SwipeRight();
  kinect::UserProfile trainer;  // 1.75 m adult facing the camera

  core::GestureLearner learner(shape.name, shape.InvolvedJoints());
  for (int i = 0; i < 3; ++i) {
    std::vector<kinect::SkeletonFrame> sample =
        kinect::SynthesizeSample(trainer, shape, /*seed=*/100 + i);
    // Samples are learned in the user-invariant kinect_t space.
    for (kinect::SkeletonFrame& frame : sample) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    Status status = learner.AddSample(sample);
    if (!status.ok()) {
      std::printf("sample rejected: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // 2. Generate the declarative gesture query (paper Fig. 1 shape).
  Result<std::string> query_text = learner.GenerateQueryText();
  if (!query_text.ok()) {
    std::printf("learning failed: %s\n",
                query_text.status().ToString().c_str());
    return 1;
  }
  std::printf("generated query:\n%s\n", query_text->c_str());

  // 3. Deploy through the shared GestureRuntime on a stream engine with
  //    the kinect_t transformation view. Every gesture this runtime ever
  //    deploys shares ONE fused operator and predicate bank, and can be
  //    hot-swapped by name at runtime.
  stream::StreamEngine engine;
  kinect::RegisterKinectStream(&engine).ok();
  transform::RegisterKinectTView(&engine).ok();
  workflow::GestureRuntime runtime(&engine);
  Result<core::GestureDefinition> definition = learner.Learn();
  int detections = 0;
  runtime
      .Deploy(*definition,
              [&detections](const cep::Detection& d) {
                ++detections;
                std::printf(">> detected \"%s\" (duration %s)\n",
                            d.name.c_str(),
                            FormatDuration(d.duration()).c_str());
              })
      .ok();

  // 4. A different user (smaller, standing elsewhere, slightly turned)
  //    performs the gesture — detection must still fire.
  kinect::UserProfile user;
  user.height_mm = 1400;
  user.torso_position = Vec3(-400, 200, 2600);
  user.yaw_rad = 0.3;
  kinect::SessionBuilder session(user, /*seed=*/999);
  session.Idle(0.5).Perform(shape, 0.4).Idle(0.5);
  kinect::PlayFrames(&engine, session.frames()).ok();

  std::printf("detections: %d (expected: 1)\n", detections);
  return detections == 1 ? 0 : 1;
}
