// OLAP navigation demo (paper Sec. 4, ref [3] "Data3"): gestures drive
// drill-down / roll-up / pivot / slice on an in-memory sales cube.
//
// Four gestures are learned from synthesized samples, bound to cube
// operators, and then a simulated analyst performs a navigation session
// in front of the virtual camera. Afterwards the bindings are exchanged
// at runtime (the paper's closing demonstration).

#include <cstdio>

#include "apps/binding.h"
#include "apps/olap.h"
#include "core/learner.h"
#include "kinect/sensor.h"
#include "transform/transform.h"
#include "transform/view.h"

using namespace epl;

namespace {

core::GestureDefinition Train(const kinect::GestureShape& shape,
                              uint64_t seed) {
  core::GestureLearner learner(shape.name, shape.InvolvedJoints());
  for (int i = 0; i < 3; ++i) {
    std::vector<kinect::SkeletonFrame> sample =
        kinect::SynthesizeSample(kinect::UserProfile(), shape, seed + i);
    for (kinect::SkeletonFrame& frame : sample) {
      frame = transform::TransformFrame(frame, transform::TransformConfig());
    }
    EPL_CHECK(learner.AddSample(sample).ok());
  }
  Result<core::GestureDefinition> definition = learner.Learn();
  EPL_CHECK(definition.ok());
  return std::move(definition).value();
}

}  // namespace

int main() {
  apps::OlapCube cube = apps::OlapCube::Demo();
  apps::GestureCommandRouter router;

  auto report = [&cube](const char* op, const Status& status) {
    std::printf("\n[gesture] %s -> %s\n", op,
                status.ok() ? "ok" : status.ToString().c_str());
    std::printf("%s", cube.Render().c_str());
  };
  router.Bind("swipe_right", [&](const cep::Detection&) {
    report("drill-down(time)", cube.DrillDown(apps::Dimension::kTime));
  });
  router.Bind("swipe_left", [&](const cep::Detection&) {
    report("roll-up(time)", cube.RollUp(apps::Dimension::kTime));
  });
  router.Bind("circle", [&](const cep::Detection&) {
    cube.Pivot();
    report("pivot", OkStatus());
  });
  router.Bind("push_forward", [&](const cep::Detection&) {
    report("slice-next", cube.SliceNext());
  });

  stream::StreamEngine engine;
  EPL_CHECK(kinect::RegisterKinectStream(&engine).ok());
  EPL_CHECK(transform::RegisterKinectTView(&engine).ok());
  std::vector<kinect::GestureShape> shapes = {
      kinect::GestureShapes::SwipeRight(), kinect::GestureShapes::SwipeLeft(),
      kinect::GestureShapes::Circle(), kinect::GestureShapes::PushForward()};
  for (size_t i = 0; i < shapes.size(); ++i) {
    EPL_CHECK(core::DeployGesture(&engine, Train(shapes[i], 300 + 10 * i),
                                  router.AsCallback())
                  .ok());
  }

  std::printf("initial cube:\n%s", cube.Render().c_str());

  // The analyst: drill twice into time, pivot, slice, roll up.
  kinect::UserProfile analyst;
  analyst.height_mm = 1680;
  kinect::SessionBuilder session(analyst, 2024);
  session.Idle(0.5)
      .Perform(kinect::GestureShapes::SwipeRight(), 0.3)
      .Idle(0.4)
      .Perform(kinect::GestureShapes::SwipeRight(), 0.3)
      .Idle(0.4)
      .Perform(kinect::GestureShapes::Circle(), 0.3)
      .Idle(0.4)
      .Perform(kinect::GestureShapes::PushForward(), 0.3)
      .Idle(0.4)
      .Perform(kinect::GestureShapes::SwipeLeft(), 0.3)
      .Idle(0.5);
  EPL_CHECK(kinect::PlayFrames(&engine, session.frames()).ok());

  // Runtime rebinding: the same swipe now navigates the region dimension.
  std::printf("\n=== rebinding swipe gestures to the region dimension ===\n");
  router.Bind("swipe_right", [&](const cep::Detection&) {
    report("drill-down(region)", cube.DrillDown(apps::Dimension::kRegion));
  });
  kinect::SessionBuilder second(analyst, 2025);
  second.Idle(0.5)
      .Perform(kinect::GestureShapes::SwipeRight(), 0.3)
      .Idle(0.5);
  EPL_CHECK(kinect::PlayFrames(&engine, second.frames()).ok());

  std::printf("\nrouter: %llu commands dispatched, %llu unhandled\n",
              static_cast<unsigned long long>(router.dispatched()),
              static_cast<unsigned long long>(router.unhandled()));
  return router.dispatched() >= 6 ? 0 : 1;
}
