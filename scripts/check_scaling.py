#!/usr/bin/env python3
"""CI gate for multi-core scale-out of the sharded matching runtime.

Reads a Google Benchmark JSON file containing BM_ShardedScaleOut rows
(wall-clock, work-stealing + pinned workers, 256 queries) and fails when
the N-shard configuration does not deliver at least --min-speedup x the
1-shard wall-clock throughput.

Repetition-aware: with --benchmark_repetitions=K the JSON carries K
"iteration" rows per configuration plus mean/median/stddev aggregates; we
take the median of the iteration rows so one noisy repetition on a shared
runner cannot flip the gate either way.

With --routed-fanout it additionally gates interest routing: the
BM_SessionRoutedFanout rows (bench_gesture_sessions) record how many
per-shard copies each pushed event cost (copies_per_event counter);
at the gate shard count the routed configuration must enqueue strictly
fewer copies per event than broadcast for every session count measured.

Usage:
  check_scaling.py BENCH.json [--baseline-shards 1] [--gate-shards 4]
                   [--min-speedup 2.0] [--routed-fanout BENCH_fanout.json]
"""

import argparse
import json
import re
import statistics
import sys

SCALEOUT_ROW = re.compile(r"^BM_ShardedScaleOut/(\d+)/(\d+)/real_time")
FANOUT_ROW = re.compile(r"^BM_SessionRoutedFanout/(\d+)/(\d+)/(\d+)/")


def load_throughputs(path):
    """name -> median items_per_second over iteration rows, keyed by shard count."""
    with open(path) as fh:
        report = json.load(fh)
    samples = {}
    for row in report.get("benchmarks", []):
        match = SCALEOUT_ROW.match(row.get("name", ""))
        if not match:
            continue
        # Skip mean/median/stddev aggregate rows; we aggregate ourselves.
        if row.get("run_type", "iteration") != "iteration":
            continue
        ips = row.get("items_per_second")
        if ips is None:
            continue
        shards = int(match.group(1))
        samples.setdefault(shards, []).append(float(ips))
    return {shards: statistics.median(values) for shards, values in samples.items()}


def load_fanout_copies(path):
    """(sessions, shards, routed) -> median copies_per_event."""
    with open(path) as fh:
        report = json.load(fh)
    samples = {}
    for row in report.get("benchmarks", []):
        match = FANOUT_ROW.match(row.get("name", ""))
        if not match:
            continue
        if row.get("run_type", "iteration") != "iteration":
            continue
        copies = row.get("copies_per_event")
        if copies is None:
            continue
        key = (int(match.group(1)), int(match.group(2)),
               int(match.group(3)) != 0)
        samples.setdefault(key, []).append(float(copies))
    return {key: statistics.median(values) for key, values in samples.items()}


def check_routed_fanout(path, gate_shards):
    """Routed must enqueue < broadcast copies/event at the gate shard count."""
    copies = load_fanout_copies(path)
    pairs = sorted(sessions for (sessions, shards, routed) in copies
                   if shards == gate_shards and routed
                   and (sessions, shards, False) in copies)
    if not pairs:
        print(f"error: no routed/broadcast BM_SessionRoutedFanout pairs at "
              f"{gate_shards} shards in {path}")
        return 2
    print(f"\n{'sessions':>8} {'broadcast':>11} {'routed':>9}  copies/event "
          f"at {gate_shards} shards")
    failed = False
    for sessions in pairs:
        broadcast = copies[(sessions, gate_shards, False)]
        routed = copies[(sessions, gate_shards, True)]
        verdict = "ok" if routed < broadcast else "FAIL"
        print(f"{sessions:>8} {broadcast:>11.2f} {routed:>9.2f}  {verdict}")
        failed = failed or routed >= broadcast
    if failed:
        print(f"\nFAIL: interest routing did not reduce fan-out copies per "
              f"event vs broadcast at {gate_shards} shards")
        return 1
    print(f"\nOK: routed fan-out enqueues fewer copies/event than broadcast "
          f"at {gate_shards} shards")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="Google Benchmark JSON output")
    parser.add_argument("--baseline-shards", type=int, default=1)
    parser.add_argument("--gate-shards", type=int, default=4)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--routed-fanout", metavar="BENCH_FANOUT_JSON",
                        help="also gate BM_SessionRoutedFanout copies/event")
    args = parser.parse_args()

    throughputs = load_throughputs(args.report)
    if not throughputs:
        print(f"error: no BM_ShardedScaleOut iteration rows in {args.report}")
        return 2
    for required in (args.baseline_shards, args.gate_shards):
        if required not in throughputs:
            print(f"error: no BM_ShardedScaleOut rows at {required} shards "
                  f"(have: {sorted(throughputs)})")
            return 2

    baseline = throughputs[args.baseline_shards]
    print(f"{'shards':>8} {'events/s':>14} {'speedup':>9}")
    for shards in sorted(throughputs):
        speedup = throughputs[shards] / baseline
        print(f"{shards:>8} {throughputs[shards]:>14,.0f} {speedup:>8.2f}x")

    speedup = throughputs[args.gate_shards] / baseline
    if speedup < args.min_speedup:
        print(f"\nFAIL: {args.gate_shards}-shard wall-clock throughput is "
              f"{speedup:.2f}x the {args.baseline_shards}-shard baseline "
              f"(gate: >= {args.min_speedup:.2f}x)")
        return 1
    print(f"\nOK: {args.gate_shards} shards deliver {speedup:.2f}x "
          f"(gate: >= {args.min_speedup:.2f}x)")

    if args.routed_fanout:
        return check_routed_fanout(args.routed_fanout, args.gate_shards)
    return 0


if __name__ == "__main__":
    sys.exit(main())
