#!/usr/bin/env python3
"""CI gate for multi-core scale-out of the sharded matching runtime.

Reads a Google Benchmark JSON file containing BM_ShardedScaleOut rows
(wall-clock, work-stealing + pinned workers, 256 queries) and fails when
the N-shard configuration does not deliver at least --min-speedup x the
1-shard wall-clock throughput.

Repetition-aware: with --benchmark_repetitions=K the JSON carries K
"iteration" rows per configuration plus mean/median/stddev aggregates; we
take the median of the iteration rows so one noisy repetition on a shared
runner cannot flip the gate either way.

Usage:
  check_scaling.py BENCH.json [--baseline-shards 1] [--gate-shards 4]
                   [--min-speedup 2.0]
"""

import argparse
import json
import re
import statistics
import sys

SCALEOUT_ROW = re.compile(r"^BM_ShardedScaleOut/(\d+)/(\d+)/real_time")


def load_throughputs(path):
    """name -> median items_per_second over iteration rows, keyed by shard count."""
    with open(path) as fh:
        report = json.load(fh)
    samples = {}
    for row in report.get("benchmarks", []):
        match = SCALEOUT_ROW.match(row.get("name", ""))
        if not match:
            continue
        # Skip mean/median/stddev aggregate rows; we aggregate ourselves.
        if row.get("run_type", "iteration") != "iteration":
            continue
        ips = row.get("items_per_second")
        if ips is None:
            continue
        shards = int(match.group(1))
        samples.setdefault(shards, []).append(float(ips))
    return {shards: statistics.median(values) for shards, values in samples.items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="Google Benchmark JSON output")
    parser.add_argument("--baseline-shards", type=int, default=1)
    parser.add_argument("--gate-shards", type=int, default=4)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args()

    throughputs = load_throughputs(args.report)
    if not throughputs:
        print(f"error: no BM_ShardedScaleOut iteration rows in {args.report}")
        return 2
    for required in (args.baseline_shards, args.gate_shards):
        if required not in throughputs:
            print(f"error: no BM_ShardedScaleOut rows at {required} shards "
                  f"(have: {sorted(throughputs)})")
            return 2

    baseline = throughputs[args.baseline_shards]
    print(f"{'shards':>8} {'events/s':>14} {'speedup':>9}")
    for shards in sorted(throughputs):
        speedup = throughputs[shards] / baseline
        print(f"{shards:>8} {throughputs[shards]:>14,.0f} {speedup:>8.2f}x")

    speedup = throughputs[args.gate_shards] / baseline
    if speedup < args.min_speedup:
        print(f"\nFAIL: {args.gate_shards}-shard wall-clock throughput is "
              f"{speedup:.2f}x the {args.baseline_shards}-shard baseline "
              f"(gate: >= {args.min_speedup:.2f}x)")
        return 1
    print(f"\nOK: {args.gate_shards} shards deliver {speedup:.2f}x "
          f"(gate: >= {args.min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
