#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_*.json against a baseline.

Compares the Google Benchmark JSON files produced by the current build
against the same-named files from the latest main-branch run (downloaded
as a CI artifact). Two families of named counters are gated:

  * items_per_second rows (events/s and friends) -- higher is better; a
    drop of more than --tolerance (default 15%) is a regression.
  * overhead_pct counters (the durability bench's WAL overhead, the
    composite bench's zero-composite flat-path overhead) -- lower is
    better; a rise of more than --tolerance relative AND 2 percentage
    points absolute is a regression (the absolute floor keeps jitter on
    small overheads from tripping the gate).

Repetition-aware: multiple "iteration" rows per benchmark are collapsed
to their median before comparison. A missing baseline directory, file,
or row is reported but never fails the build (first run, renamed bench,
new bench). A summary table is written to $GITHUB_STEP_SUMMARY when set.

Besides the artifact-directory baseline, a compact committed baseline is
supported: --write-summary distills a directory of BENCH_*.json into one
small JSON file (just the gated medians), which CI commits back to main
as bench/baseline/BENCH_summary.json after every successful main run.
--baseline-summary uses that file for any bench the artifact baseline is
missing (expired artifact, fork without artifact access, local runs), so
the comparison always has SOME baseline instead of silently skipping.

Usage:
  bench_compare.py --current DIR --baseline DIR [--tolerance 0.15]
                   [--baseline-summary FILE]
  bench_compare.py --current DIR --write-summary FILE
  bench_compare.py --self-test
"""

import argparse
import glob
import json
import os
import statistics
import sys
import tempfile

OVERHEAD_ABS_FLOOR = 2.0  # percentage points


def load_metrics(path):
    """Returns {metric_name: median_value}; one metric per gated counter."""
    with open(path) as fh:
        report = json.load(fh)
    samples = {}
    for row in report.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        name = row.get("name", "")
        if "items_per_second" in row:
            samples.setdefault(f"{name} [events/s]", []).append(
                float(row["items_per_second"]))
        if "overhead_pct" in row:
            samples.setdefault(f"{name} [overhead_pct]", []).append(
                float(row["overhead_pct"]))
    return {name: statistics.median(values) for name, values in samples.items()}


def classify(metric, base, cur, tolerance):
    """-> (status, delta_pct). status: 'ok' | 'regression' | 'improved'."""
    higher_is_better = metric.endswith("[events/s]")
    if higher_is_better:
        delta = (cur - base) / base if base else 0.0
        if delta < -tolerance:
            return "regression", delta
        return ("improved" if delta > tolerance else "ok"), delta
    # overhead_pct: lower is better, guarded by an absolute floor.
    delta = (cur - base) / abs(base) if base else 0.0
    if cur - base > OVERHEAD_ABS_FLOOR and delta > tolerance:
        return "regression", delta
    if base - cur > OVERHEAD_ABS_FLOOR and delta < -tolerance:
        return "improved", delta
    return "ok", delta


def load_summary(path):
    """Committed compact baseline -> {file_name: {metric: value}}."""
    if not path or not os.path.isfile(path):
        return {}
    with open(path) as fh:
        summary = json.load(fh)
    return {name: {metric: float(value) for metric, value in metrics.items()}
            for name, metrics in summary.get("files", {}).items()}


def write_summary(current_dir, path):
    """Distill a directory of BENCH_*.json into the compact baseline file."""
    files = {}
    for current_path in sorted(glob.glob(os.path.join(current_dir,
                                                      "BENCH_*.json"))):
        metrics = load_metrics(current_path)
        if metrics:
            files[os.path.basename(current_path)] = metrics
    if not files:
        print(f"error: no gated metrics under {current_dir}")
        return 1
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"format": "bench-summary/1", "files": files}, fh,
                  indent=1, sort_keys=True)
        fh.write("\n")
    rows = sum(len(metrics) for metrics in files.values())
    print(f"wrote {path}: {rows} gated metrics from {len(files)} bench files")
    return 0


def compare_dirs(current_dir, baseline_dir, tolerance, baseline_summary=None):
    """-> (markdown_lines, regressions, notes)."""
    lines = ["| benchmark | baseline | current | delta | status |",
             "|---|---:|---:|---:|---|"]
    regressions, notes = [], []
    summary = load_summary(baseline_summary)
    current_files = sorted(glob.glob(os.path.join(current_dir, "BENCH_*.json")))
    if not current_files:
        notes.append(f"no BENCH_*.json files under {current_dir}")
    for current_path in current_files:
        name = os.path.basename(current_path)
        baseline_path = os.path.join(baseline_dir, name) if baseline_dir \
            else None
        if baseline_path and os.path.isfile(baseline_path):
            base_metrics = load_metrics(baseline_path)
        elif name in summary:
            base_metrics = summary[name]
            notes.append(f"{name}: baseline from committed summary")
        else:
            notes.append(f"{name}: no baseline (first run of this bench?)")
            continue
        cur_metrics = load_metrics(current_path)
        for metric in sorted(cur_metrics):
            if metric not in base_metrics:
                # Rows that exist only in the current run (a new or renamed
                # bench, e.g. fresh SIMD kernel rows) are informational:
                # shown in the table so the number is on record, never gated.
                lines.append(f"| `{metric}` | — | {cur_metrics[metric]:,.1f} "
                             f"| — | new |")
                notes.append(f"{name}: new metric {metric}")
                continue
            base, cur = base_metrics[metric], cur_metrics[metric]
            status, delta = classify(metric, base, cur, tolerance)
            marker = {"ok": "ok", "improved": "improved ✅",
                      "regression": "REGRESSION ❌"}[status]
            lines.append(f"| `{metric}` | {base:,.1f} | {cur:,.1f} "
                         f"| {delta:+.1%} | {marker} |")
            if status == "regression":
                regressions.append(f"{metric}: {base:,.1f} -> {cur:,.1f} "
                                   f"({delta:+.1%})")
    return lines, regressions, notes


def emit(lines, regressions, notes, tolerance):
    body = ["## Bench comparison vs latest main", ""]
    body += lines
    if notes:
        body += ["", *[f"- note: {note}" for note in notes]]
    if regressions:
        body += ["", f"**{len(regressions)} regression(s) beyond "
                     f"{tolerance:.0%}:**",
                 *[f"- {r}" for r in regressions]]
    else:
        body += ["", f"No regressions beyond {tolerance:.0%}."]
    text = "\n".join(body)
    print(text)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(text + "\n")


def synthetic_report(ips, overhead, extra=None):
    benchmarks = [
        {"name": "BM_ShardedScaleOut/4/256/real_time",
         "run_type": "iteration", "items_per_second": ips},
        {"name": "BM_DurabilityOverhead/64", "run_type": "iteration",
         "overhead_pct": overhead},
        {"name": "BM_CompositeOverhead/8", "run_type": "iteration",
         "items_per_second": ips, "overhead_pct": overhead / 10.0},
    ]
    if extra is not None:
        benchmarks.append({"name": extra, "run_type": "iteration",
                           "items_per_second": ips})
    return {"benchmarks": benchmarks}


def self_test():
    """Prove the gate trips on an injected regression and only then."""
    with tempfile.TemporaryDirectory() as base, \
         tempfile.TemporaryDirectory() as good, \
         tempfile.TemporaryDirectory() as bad:
        with open(os.path.join(base, "BENCH_x.json"), "w") as fh:
            json.dump(synthetic_report(1_000_000.0, 10.0), fh)
        # Within tolerance: -5% throughput, +1 point overhead; plus a row
        # with no baseline counterpart, which must be reported as "new"
        # and must NOT fail the run.
        with open(os.path.join(good, "BENCH_x.json"), "w") as fh:
            json.dump(synthetic_report(950_000.0, 11.0,
                                       extra="BM_BrandNewKernel/32"), fh)
        # Injected regressions: -30% throughput (both items_per_second
        # rows) and durability overhead 10% -> 25%. The composite
        # overhead rises 1.0 -> 2.5 points: above tolerance relatively
        # but under the 2-point absolute floor, so it must NOT trip.
        with open(os.path.join(bad, "BENCH_x.json"), "w") as fh:
            json.dump(synthetic_report(700_000.0, 25.0), fh)

        good_lines, regressions, good_notes = compare_dirs(good, base, 0.15)
        if regressions:
            print(f"self-test FAILED: clean run flagged {regressions}")
            return 1
        new_rows = [line for line in good_lines if "| new |" in line]
        if len(new_rows) != 1 or "BM_BrandNewKernel" not in new_rows[0]:
            print(f"self-test FAILED: baseline-less metric not surfaced as "
                  f"a 'new' table row (got {new_rows})")
            return 1
        if not any("new metric" in note for note in good_notes):
            print("self-test FAILED: baseline-less metric missing from notes")
            return 1
        _, regressions, _ = compare_dirs(bad, base, 0.15)
        if len(regressions) != 3:
            print(f"self-test FAILED: injected regressions not caught "
                  f"(got {regressions})")
            return 1
        # Committed-summary fallback: distill the baseline dir into the
        # compact summary, then compare with NO artifact baseline at all.
        # The same injected regressions must trip via the summary alone.
        summary_path = os.path.join(base, "BENCH_summary.json")
        if write_summary(base, summary_path) != 0:
            print("self-test FAILED: could not write compact summary")
            return 1
        _, regressions, sum_notes = compare_dirs(
            bad, None, 0.15, baseline_summary=summary_path)
        if len(regressions) != 3:
            print(f"self-test FAILED: summary-file baseline missed the "
                  f"injected regressions (got {regressions})")
            return 1
        if not any("committed summary" in note for note in sum_notes):
            print("self-test FAILED: summary fallback not noted")
            return 1
        print("self-test OK: injected regression trips the gate (artifact "
              "and summary baselines), in-tolerance noise does not")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", help="directory with fresh BENCH_*.json")
    parser.add_argument("--baseline",
                        help="directory with baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--baseline-summary", metavar="FILE",
                        help="committed compact baseline used for any bench "
                             "the --baseline directory is missing")
    parser.add_argument("--write-summary", metavar="FILE",
                        help="distill --current into the compact baseline "
                             "file and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate on synthetic data and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.write_summary:
        if not args.current:
            parser.error("--write-summary requires --current")
        return write_summary(args.current, args.write_summary)
    if not args.current or not (args.baseline or args.baseline_summary):
        parser.error("--current and --baseline or --baseline-summary are "
                     "required (or --self-test / --write-summary)")
    baseline_dir = args.baseline if args.baseline and \
        os.path.isdir(args.baseline) else None
    if baseline_dir is None and not load_summary(args.baseline_summary):
        print("no baseline artifact directory and no committed summary; "
              "skipping comparison (first run on this branch?)")
        return 0
    lines, regressions, notes = compare_dirs(args.current, baseline_dir,
                                             args.tolerance,
                                             args.baseline_summary)
    emit(lines, regressions, notes, args.tolerance)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
