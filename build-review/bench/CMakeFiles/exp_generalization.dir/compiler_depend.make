# Empty compiler generated dependencies file for exp_generalization.
# This may be replaced when dependencies are built.
