file(REMOVE_RECURSE
  "CMakeFiles/exp_generalization.dir/exp_generalization.cc.o"
  "CMakeFiles/exp_generalization.dir/exp_generalization.cc.o.d"
  "exp_generalization"
  "exp_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
