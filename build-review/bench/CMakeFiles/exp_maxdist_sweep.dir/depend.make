# Empty dependencies file for exp_maxdist_sweep.
# This may be replaced when dependencies are built.
