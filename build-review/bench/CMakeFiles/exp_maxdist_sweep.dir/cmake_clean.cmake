file(REMOVE_RECURSE
  "CMakeFiles/exp_maxdist_sweep.dir/exp_maxdist_sweep.cc.o"
  "CMakeFiles/exp_maxdist_sweep.dir/exp_maxdist_sweep.cc.o.d"
  "exp_maxdist_sweep"
  "exp_maxdist_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_maxdist_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
