file(REMOVE_RECURSE
  "CMakeFiles/bench_nfa.dir/bench_nfa.cc.o"
  "CMakeFiles/bench_nfa.dir/bench_nfa.cc.o.d"
  "bench_nfa"
  "bench_nfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
