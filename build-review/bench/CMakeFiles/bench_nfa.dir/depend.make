# Empty dependencies file for bench_nfa.
# This may be replaced when dependencies are built.
