file(REMOVE_RECURSE
  "CMakeFiles/bench_expr.dir/bench_expr.cc.o"
  "CMakeFiles/bench_expr.dir/bench_expr.cc.o.d"
  "bench_expr"
  "bench_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
