# Empty dependencies file for bench_expr.
# This may be replaced when dependencies are built.
