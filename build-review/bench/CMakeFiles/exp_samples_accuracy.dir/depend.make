# Empty dependencies file for exp_samples_accuracy.
# This may be replaced when dependencies are built.
