file(REMOVE_RECURSE
  "CMakeFiles/exp_samples_accuracy.dir/exp_samples_accuracy.cc.o"
  "CMakeFiles/exp_samples_accuracy.dir/exp_samples_accuracy.cc.o.d"
  "exp_samples_accuracy"
  "exp_samples_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_samples_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
