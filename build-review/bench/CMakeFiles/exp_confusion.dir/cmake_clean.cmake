file(REMOVE_RECURSE
  "CMakeFiles/exp_confusion.dir/exp_confusion.cc.o"
  "CMakeFiles/exp_confusion.dir/exp_confusion.cc.o.d"
  "exp_confusion"
  "exp_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
