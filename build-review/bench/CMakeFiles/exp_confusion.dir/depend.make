# Empty dependencies file for exp_confusion.
# This may be replaced when dependencies are built.
