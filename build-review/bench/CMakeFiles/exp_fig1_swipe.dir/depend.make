# Empty dependencies file for exp_fig1_swipe.
# This may be replaced when dependencies are built.
