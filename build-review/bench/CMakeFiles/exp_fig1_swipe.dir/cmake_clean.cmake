file(REMOVE_RECURSE
  "CMakeFiles/exp_fig1_swipe.dir/exp_fig1_swipe.cc.o"
  "CMakeFiles/exp_fig1_swipe.dir/exp_fig1_swipe.cc.o.d"
  "exp_fig1_swipe"
  "exp_fig1_swipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig1_swipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
