# Empty dependencies file for exp_invariance.
# This may be replaced when dependencies are built.
