file(REMOVE_RECURSE
  "CMakeFiles/exp_invariance.dir/exp_invariance.cc.o"
  "CMakeFiles/exp_invariance.dir/exp_invariance.cc.o.d"
  "exp_invariance"
  "exp_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
