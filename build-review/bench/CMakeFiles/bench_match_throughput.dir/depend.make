# Empty dependencies file for bench_match_throughput.
# This may be replaced when dependencies are built.
