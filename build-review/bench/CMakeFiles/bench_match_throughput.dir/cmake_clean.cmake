file(REMOVE_RECURSE
  "CMakeFiles/bench_match_throughput.dir/bench_match_throughput.cc.o"
  "CMakeFiles/bench_match_throughput.dir/bench_match_throughput.cc.o.d"
  "bench_match_throughput"
  "bench_match_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
