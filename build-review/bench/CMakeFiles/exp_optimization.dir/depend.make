# Empty dependencies file for exp_optimization.
# This may be replaced when dependencies are built.
