file(REMOVE_RECURSE
  "CMakeFiles/exp_optimization.dir/exp_optimization.cc.o"
  "CMakeFiles/exp_optimization.dir/exp_optimization.cc.o.d"
  "exp_optimization"
  "exp_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
