file(REMOVE_RECURSE
  "CMakeFiles/bench_learning.dir/bench_learning.cc.o"
  "CMakeFiles/bench_learning.dir/bench_learning.cc.o.d"
  "bench_learning"
  "bench_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
