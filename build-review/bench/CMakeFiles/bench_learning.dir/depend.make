# Empty dependencies file for bench_learning.
# This may be replaced when dependencies are built.
