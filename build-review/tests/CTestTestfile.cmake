# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/apps_test[1]_include.cmake")
include("/root/repo/build-review/tests/cep_expr_program_test[1]_include.cmake")
include("/root/repo/build-review/tests/cep_expr_test[1]_include.cmake")
include("/root/repo/build-review/tests/cep_matcher_test[1]_include.cmake")
include("/root/repo/build-review/tests/cep_multi_matcher_test[1]_include.cmake")
include("/root/repo/build-review/tests/cep_pattern_test[1]_include.cmake")
include("/root/repo/build-review/tests/cep_predicate_bank_test[1]_include.cmake")
include("/root/repo/build-review/tests/common_math_test[1]_include.cmake")
include("/root/repo/build-review/tests/common_status_test[1]_include.cmake")
include("/root/repo/build-review/tests/common_strings_csv_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_learner_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_merger_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_sampler_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_window_test[1]_include.cmake")
include("/root/repo/build-review/tests/gesturedb_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/kinect_test[1]_include.cmake")
include("/root/repo/build-review/tests/optimize_test[1]_include.cmake")
include("/root/repo/build-review/tests/query_lexer_test[1]_include.cmake")
include("/root/repo/build-review/tests/query_parser_test[1]_include.cmake")
include("/root/repo/build-review/tests/stream_engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/stream_queue_test[1]_include.cmake")
include("/root/repo/build-review/tests/transform_test[1]_include.cmake")
include("/root/repo/build-review/tests/workflow_test[1]_include.cmake")
