file(REMOVE_RECURSE
  "CMakeFiles/core_window_test.dir/core_window_test.cc.o"
  "CMakeFiles/core_window_test.dir/core_window_test.cc.o.d"
  "CMakeFiles/core_window_test.dir/test_util.cc.o"
  "CMakeFiles/core_window_test.dir/test_util.cc.o.d"
  "core_window_test"
  "core_window_test.pdb"
  "core_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
