# Empty dependencies file for gesturedb_test.
# This may be replaced when dependencies are built.
