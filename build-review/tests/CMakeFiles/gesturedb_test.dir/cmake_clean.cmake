file(REMOVE_RECURSE
  "CMakeFiles/gesturedb_test.dir/gesturedb_test.cc.o"
  "CMakeFiles/gesturedb_test.dir/gesturedb_test.cc.o.d"
  "CMakeFiles/gesturedb_test.dir/test_util.cc.o"
  "CMakeFiles/gesturedb_test.dir/test_util.cc.o.d"
  "gesturedb_test"
  "gesturedb_test.pdb"
  "gesturedb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesturedb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
