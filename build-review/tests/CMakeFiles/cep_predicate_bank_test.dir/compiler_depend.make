# Empty compiler generated dependencies file for cep_predicate_bank_test.
# This may be replaced when dependencies are built.
