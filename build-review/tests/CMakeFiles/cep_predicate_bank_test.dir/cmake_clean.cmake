file(REMOVE_RECURSE
  "CMakeFiles/cep_predicate_bank_test.dir/cep_predicate_bank_test.cc.o"
  "CMakeFiles/cep_predicate_bank_test.dir/cep_predicate_bank_test.cc.o.d"
  "CMakeFiles/cep_predicate_bank_test.dir/test_util.cc.o"
  "CMakeFiles/cep_predicate_bank_test.dir/test_util.cc.o.d"
  "cep_predicate_bank_test"
  "cep_predicate_bank_test.pdb"
  "cep_predicate_bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_predicate_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
