# Empty dependencies file for kinect_test.
# This may be replaced when dependencies are built.
