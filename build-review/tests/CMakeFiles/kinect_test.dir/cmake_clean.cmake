file(REMOVE_RECURSE
  "CMakeFiles/kinect_test.dir/kinect_test.cc.o"
  "CMakeFiles/kinect_test.dir/kinect_test.cc.o.d"
  "CMakeFiles/kinect_test.dir/test_util.cc.o"
  "CMakeFiles/kinect_test.dir/test_util.cc.o.d"
  "kinect_test"
  "kinect_test.pdb"
  "kinect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
