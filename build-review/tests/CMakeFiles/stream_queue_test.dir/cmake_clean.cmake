file(REMOVE_RECURSE
  "CMakeFiles/stream_queue_test.dir/stream_queue_test.cc.o"
  "CMakeFiles/stream_queue_test.dir/stream_queue_test.cc.o.d"
  "CMakeFiles/stream_queue_test.dir/test_util.cc.o"
  "CMakeFiles/stream_queue_test.dir/test_util.cc.o.d"
  "stream_queue_test"
  "stream_queue_test.pdb"
  "stream_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
