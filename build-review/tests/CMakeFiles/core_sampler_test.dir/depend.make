# Empty dependencies file for core_sampler_test.
# This may be replaced when dependencies are built.
