file(REMOVE_RECURSE
  "CMakeFiles/core_sampler_test.dir/core_sampler_test.cc.o"
  "CMakeFiles/core_sampler_test.dir/core_sampler_test.cc.o.d"
  "CMakeFiles/core_sampler_test.dir/test_util.cc.o"
  "CMakeFiles/core_sampler_test.dir/test_util.cc.o.d"
  "core_sampler_test"
  "core_sampler_test.pdb"
  "core_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
