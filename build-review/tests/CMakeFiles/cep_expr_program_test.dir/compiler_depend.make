# Empty compiler generated dependencies file for cep_expr_program_test.
# This may be replaced when dependencies are built.
