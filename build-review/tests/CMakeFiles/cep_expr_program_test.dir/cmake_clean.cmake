file(REMOVE_RECURSE
  "CMakeFiles/cep_expr_program_test.dir/cep_expr_program_test.cc.o"
  "CMakeFiles/cep_expr_program_test.dir/cep_expr_program_test.cc.o.d"
  "CMakeFiles/cep_expr_program_test.dir/test_util.cc.o"
  "CMakeFiles/cep_expr_program_test.dir/test_util.cc.o.d"
  "cep_expr_program_test"
  "cep_expr_program_test.pdb"
  "cep_expr_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_expr_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
