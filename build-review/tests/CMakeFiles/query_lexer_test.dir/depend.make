# Empty dependencies file for query_lexer_test.
# This may be replaced when dependencies are built.
