file(REMOVE_RECURSE
  "CMakeFiles/query_lexer_test.dir/query_lexer_test.cc.o"
  "CMakeFiles/query_lexer_test.dir/query_lexer_test.cc.o.d"
  "CMakeFiles/query_lexer_test.dir/test_util.cc.o"
  "CMakeFiles/query_lexer_test.dir/test_util.cc.o.d"
  "query_lexer_test"
  "query_lexer_test.pdb"
  "query_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
