file(REMOVE_RECURSE
  "CMakeFiles/cep_multi_matcher_test.dir/cep_multi_matcher_test.cc.o"
  "CMakeFiles/cep_multi_matcher_test.dir/cep_multi_matcher_test.cc.o.d"
  "CMakeFiles/cep_multi_matcher_test.dir/test_util.cc.o"
  "CMakeFiles/cep_multi_matcher_test.dir/test_util.cc.o.d"
  "cep_multi_matcher_test"
  "cep_multi_matcher_test.pdb"
  "cep_multi_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_multi_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
