# Empty compiler generated dependencies file for core_merger_test.
# This may be replaced when dependencies are built.
