file(REMOVE_RECURSE
  "CMakeFiles/core_merger_test.dir/core_merger_test.cc.o"
  "CMakeFiles/core_merger_test.dir/core_merger_test.cc.o.d"
  "CMakeFiles/core_merger_test.dir/test_util.cc.o"
  "CMakeFiles/core_merger_test.dir/test_util.cc.o.d"
  "core_merger_test"
  "core_merger_test.pdb"
  "core_merger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_merger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
