file(REMOVE_RECURSE
  "CMakeFiles/common_strings_csv_test.dir/common_strings_csv_test.cc.o"
  "CMakeFiles/common_strings_csv_test.dir/common_strings_csv_test.cc.o.d"
  "CMakeFiles/common_strings_csv_test.dir/test_util.cc.o"
  "CMakeFiles/common_strings_csv_test.dir/test_util.cc.o.d"
  "common_strings_csv_test"
  "common_strings_csv_test.pdb"
  "common_strings_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_strings_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
