file(REMOVE_RECURSE
  "CMakeFiles/workflow_test.dir/test_util.cc.o"
  "CMakeFiles/workflow_test.dir/test_util.cc.o.d"
  "CMakeFiles/workflow_test.dir/workflow_test.cc.o"
  "CMakeFiles/workflow_test.dir/workflow_test.cc.o.d"
  "workflow_test"
  "workflow_test.pdb"
  "workflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
