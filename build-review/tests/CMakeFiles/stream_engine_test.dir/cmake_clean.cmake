file(REMOVE_RECURSE
  "CMakeFiles/stream_engine_test.dir/stream_engine_test.cc.o"
  "CMakeFiles/stream_engine_test.dir/stream_engine_test.cc.o.d"
  "CMakeFiles/stream_engine_test.dir/test_util.cc.o"
  "CMakeFiles/stream_engine_test.dir/test_util.cc.o.d"
  "stream_engine_test"
  "stream_engine_test.pdb"
  "stream_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
