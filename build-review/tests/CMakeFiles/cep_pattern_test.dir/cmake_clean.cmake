file(REMOVE_RECURSE
  "CMakeFiles/cep_pattern_test.dir/cep_pattern_test.cc.o"
  "CMakeFiles/cep_pattern_test.dir/cep_pattern_test.cc.o.d"
  "CMakeFiles/cep_pattern_test.dir/test_util.cc.o"
  "CMakeFiles/cep_pattern_test.dir/test_util.cc.o.d"
  "cep_pattern_test"
  "cep_pattern_test.pdb"
  "cep_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
