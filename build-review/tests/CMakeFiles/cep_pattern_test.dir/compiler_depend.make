# Empty compiler generated dependencies file for cep_pattern_test.
# This may be replaced when dependencies are built.
