file(REMOVE_RECURSE
  "CMakeFiles/core_learner_test.dir/core_learner_test.cc.o"
  "CMakeFiles/core_learner_test.dir/core_learner_test.cc.o.d"
  "CMakeFiles/core_learner_test.dir/test_util.cc.o"
  "CMakeFiles/core_learner_test.dir/test_util.cc.o.d"
  "core_learner_test"
  "core_learner_test.pdb"
  "core_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
