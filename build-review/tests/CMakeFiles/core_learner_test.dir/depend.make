# Empty dependencies file for core_learner_test.
# This may be replaced when dependencies are built.
