file(REMOVE_RECURSE
  "libepl.a"
)
