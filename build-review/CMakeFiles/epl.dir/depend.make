# Empty dependencies file for epl.
# This may be replaced when dependencies are built.
