
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/binding.cc" "CMakeFiles/epl.dir/src/apps/binding.cc.o" "gcc" "CMakeFiles/epl.dir/src/apps/binding.cc.o.d"
  "/root/repo/src/apps/graph.cc" "CMakeFiles/epl.dir/src/apps/graph.cc.o" "gcc" "CMakeFiles/epl.dir/src/apps/graph.cc.o.d"
  "/root/repo/src/apps/olap.cc" "CMakeFiles/epl.dir/src/apps/olap.cc.o" "gcc" "CMakeFiles/epl.dir/src/apps/olap.cc.o.d"
  "/root/repo/src/cep/expr.cc" "CMakeFiles/epl.dir/src/cep/expr.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/expr.cc.o.d"
  "/root/repo/src/cep/expr_program.cc" "CMakeFiles/epl.dir/src/cep/expr_program.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/expr_program.cc.o.d"
  "/root/repo/src/cep/match_operator.cc" "CMakeFiles/epl.dir/src/cep/match_operator.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/match_operator.cc.o.d"
  "/root/repo/src/cep/matcher.cc" "CMakeFiles/epl.dir/src/cep/matcher.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/matcher.cc.o.d"
  "/root/repo/src/cep/multi_match_operator.cc" "CMakeFiles/epl.dir/src/cep/multi_match_operator.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/multi_match_operator.cc.o.d"
  "/root/repo/src/cep/multi_matcher.cc" "CMakeFiles/epl.dir/src/cep/multi_matcher.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/multi_matcher.cc.o.d"
  "/root/repo/src/cep/nfa.cc" "CMakeFiles/epl.dir/src/cep/nfa.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/nfa.cc.o.d"
  "/root/repo/src/cep/pattern.cc" "CMakeFiles/epl.dir/src/cep/pattern.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/pattern.cc.o.d"
  "/root/repo/src/cep/predicate_bank.cc" "CMakeFiles/epl.dir/src/cep/predicate_bank.cc.o" "gcc" "CMakeFiles/epl.dir/src/cep/predicate_bank.cc.o.d"
  "/root/repo/src/common/csv.cc" "CMakeFiles/epl.dir/src/common/csv.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/epl.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/mat3.cc" "CMakeFiles/epl.dir/src/common/mat3.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/mat3.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/epl.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/epl.dir/src/common/status.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/epl.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/common/time_util.cc" "CMakeFiles/epl.dir/src/common/time_util.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/time_util.cc.o.d"
  "/root/repo/src/common/vec3.cc" "CMakeFiles/epl.dir/src/common/vec3.cc.o" "gcc" "CMakeFiles/epl.dir/src/common/vec3.cc.o.d"
  "/root/repo/src/core/distance.cc" "CMakeFiles/epl.dir/src/core/distance.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/distance.cc.o.d"
  "/root/repo/src/core/gesture_definition.cc" "CMakeFiles/epl.dir/src/core/gesture_definition.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/gesture_definition.cc.o.d"
  "/root/repo/src/core/learner.cc" "CMakeFiles/epl.dir/src/core/learner.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/learner.cc.o.d"
  "/root/repo/src/core/merger.cc" "CMakeFiles/epl.dir/src/core/merger.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/merger.cc.o.d"
  "/root/repo/src/core/query_gen.cc" "CMakeFiles/epl.dir/src/core/query_gen.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/query_gen.cc.o.d"
  "/root/repo/src/core/sampler.cc" "CMakeFiles/epl.dir/src/core/sampler.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/sampler.cc.o.d"
  "/root/repo/src/core/window.cc" "CMakeFiles/epl.dir/src/core/window.cc.o" "gcc" "CMakeFiles/epl.dir/src/core/window.cc.o.d"
  "/root/repo/src/gesturedb/serialization.cc" "CMakeFiles/epl.dir/src/gesturedb/serialization.cc.o" "gcc" "CMakeFiles/epl.dir/src/gesturedb/serialization.cc.o.d"
  "/root/repo/src/gesturedb/store.cc" "CMakeFiles/epl.dir/src/gesturedb/store.cc.o" "gcc" "CMakeFiles/epl.dir/src/gesturedb/store.cc.o.d"
  "/root/repo/src/kinect/body_model.cc" "CMakeFiles/epl.dir/src/kinect/body_model.cc.o" "gcc" "CMakeFiles/epl.dir/src/kinect/body_model.cc.o.d"
  "/root/repo/src/kinect/gesture_shapes.cc" "CMakeFiles/epl.dir/src/kinect/gesture_shapes.cc.o" "gcc" "CMakeFiles/epl.dir/src/kinect/gesture_shapes.cc.o.d"
  "/root/repo/src/kinect/sensor.cc" "CMakeFiles/epl.dir/src/kinect/sensor.cc.o" "gcc" "CMakeFiles/epl.dir/src/kinect/sensor.cc.o.d"
  "/root/repo/src/kinect/skeleton.cc" "CMakeFiles/epl.dir/src/kinect/skeleton.cc.o" "gcc" "CMakeFiles/epl.dir/src/kinect/skeleton.cc.o.d"
  "/root/repo/src/kinect/synthesizer.cc" "CMakeFiles/epl.dir/src/kinect/synthesizer.cc.o" "gcc" "CMakeFiles/epl.dir/src/kinect/synthesizer.cc.o.d"
  "/root/repo/src/kinect/trace_io.cc" "CMakeFiles/epl.dir/src/kinect/trace_io.cc.o" "gcc" "CMakeFiles/epl.dir/src/kinect/trace_io.cc.o.d"
  "/root/repo/src/optimize/overlap.cc" "CMakeFiles/epl.dir/src/optimize/overlap.cc.o" "gcc" "CMakeFiles/epl.dir/src/optimize/overlap.cc.o.d"
  "/root/repo/src/optimize/simplify.cc" "CMakeFiles/epl.dir/src/optimize/simplify.cc.o" "gcc" "CMakeFiles/epl.dir/src/optimize/simplify.cc.o.d"
  "/root/repo/src/query/compiler.cc" "CMakeFiles/epl.dir/src/query/compiler.cc.o" "gcc" "CMakeFiles/epl.dir/src/query/compiler.cc.o.d"
  "/root/repo/src/query/lexer.cc" "CMakeFiles/epl.dir/src/query/lexer.cc.o" "gcc" "CMakeFiles/epl.dir/src/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "CMakeFiles/epl.dir/src/query/parser.cc.o" "gcc" "CMakeFiles/epl.dir/src/query/parser.cc.o.d"
  "/root/repo/src/query/unparser.cc" "CMakeFiles/epl.dir/src/query/unparser.cc.o" "gcc" "CMakeFiles/epl.dir/src/query/unparser.cc.o.d"
  "/root/repo/src/stream/engine.cc" "CMakeFiles/epl.dir/src/stream/engine.cc.o" "gcc" "CMakeFiles/epl.dir/src/stream/engine.cc.o.d"
  "/root/repo/src/stream/event.cc" "CMakeFiles/epl.dir/src/stream/event.cc.o" "gcc" "CMakeFiles/epl.dir/src/stream/event.cc.o.d"
  "/root/repo/src/stream/runner.cc" "CMakeFiles/epl.dir/src/stream/runner.cc.o" "gcc" "CMakeFiles/epl.dir/src/stream/runner.cc.o.d"
  "/root/repo/src/stream/schema.cc" "CMakeFiles/epl.dir/src/stream/schema.cc.o" "gcc" "CMakeFiles/epl.dir/src/stream/schema.cc.o.d"
  "/root/repo/src/transform/rpy.cc" "CMakeFiles/epl.dir/src/transform/rpy.cc.o" "gcc" "CMakeFiles/epl.dir/src/transform/rpy.cc.o.d"
  "/root/repo/src/transform/transform.cc" "CMakeFiles/epl.dir/src/transform/transform.cc.o" "gcc" "CMakeFiles/epl.dir/src/transform/transform.cc.o.d"
  "/root/repo/src/transform/view.cc" "CMakeFiles/epl.dir/src/transform/view.cc.o" "gcc" "CMakeFiles/epl.dir/src/transform/view.cc.o.d"
  "/root/repo/src/workflow/control_gestures.cc" "CMakeFiles/epl.dir/src/workflow/control_gestures.cc.o" "gcc" "CMakeFiles/epl.dir/src/workflow/control_gestures.cc.o.d"
  "/root/repo/src/workflow/controller.cc" "CMakeFiles/epl.dir/src/workflow/controller.cc.o" "gcc" "CMakeFiles/epl.dir/src/workflow/controller.cc.o.d"
  "/root/repo/src/workflow/motion_detector.cc" "CMakeFiles/epl.dir/src/workflow/motion_detector.cc.o" "gcc" "CMakeFiles/epl.dir/src/workflow/motion_detector.cc.o.d"
  "/root/repo/src/workflow/recorder.cc" "CMakeFiles/epl.dir/src/workflow/recorder.cc.o" "gcc" "CMakeFiles/epl.dir/src/workflow/recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
